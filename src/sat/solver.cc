#include "sat/solver.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "sat/share.hh"
#include "sat/simplify.hh"

namespace r2u::sat
{

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::None: return "none";
      case StopReason::ConflictBudget: return "conflict-budget";
      case StopReason::PropagationBudget: return "propagation-budget";
      case StopReason::Deadline: return "deadline";
      case StopReason::Interrupt: return "interrupt";
    }
    return "?";
}

Solver::Solver()
{
    watches_.clear();
}

Solver::~Solver() = default;

uint64_t
Solver::nextRandom()
{
    // xorshift64*; lazily seeded so setConfig() can run after ctor.
    if (rng_state_ == 0)
        rng_state_ = cfg_.seed ^ 0x9E3779B97F4A7C15ull;
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    return rng_state_;
}

Var
Solver::newVar()
{
    Var v = numVars();
    assigns_.push_back(LBool::Undef);
    // Default phase: assign false first; Rand diversifies the initial
    // phase only — once assigned, phase saving takes over as usual.
    bool neg_first = true;
    if (cfg_.polarity == SolverConfig::Polarity::Rand)
        neg_first = (nextRandom() & 1) != 0;
    polarity_.push_back(neg_first);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    reason_.push_back(-1);
    level_.push_back(0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    if (!ok_)
        return false;
    R2U_ASSERT(decisionLevel() == 0, "addClause above root level");
    added_clauses_++;

    // Sort, dedup, drop false literals, detect tautologies/satisfied.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = kLitUndef;
    for (Lit l : lits) {
        R2U_ASSERT(var(l) >= 0 && var(l) < numVars(), "bad literal");
        R2U_ASSERT(!isEliminated(var(l)),
                   "addClause on eliminated variable %d", var(l));
        if (value(l) == LBool::True || l == ~prev)
            return true; // satisfied or tautology
        if (value(l) != LBool::False && l != prev) {
            out.push_back(l);
            prev = l;
        }
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], -1);
        ok_ = (propagate() == -1);
        return ok_;
    }

    int cref = allocClause(out.data(), static_cast<uint32_t>(out.size()),
                           false, 0, 0.0f);
    crefs_.push_back(cref);
    attachClause(cref);
    return true;
}

int
Solver::allocClause(const Lit *lits, uint32_t size, bool learnt,
                    uint32_t lbd, float activity)
{
    int cref = static_cast<int>(arena_.size());
    arena_.resize(arena_.size() + kClauseHeader + size);
    Clause c = clause(cref);
    c.p[0] = (size << 3) | (learnt ? kFlagLearnt : 0);
    c.setLbd(lbd);
    c.setActivity(activity);
    std::memcpy(c.lits(), lits, size * sizeof(Lit));
    return cref;
}

void
Solver::attachClause(int cref)
{
    const Clause c = clause(cref);
    R2U_ASSERT(c.size() >= 2, "attach of short clause");
    watches_[(~c[0]).x].push_back(Watcher{cref, c[1]});
    watches_[(~c[1]).x].push_back(Watcher{cref, c[0]});
}

void
Solver::detachClause(int cref)
{
    const Clause c = clause(cref);
    for (int w = 0; w < 2; w++) {
        auto &ws = watches_[(~c[w]).x];
        for (size_t k = 0; k < ws.size(); k++) {
            if (ws[k].cref == cref) {
                ws[k] = ws.back();
                ws.pop_back();
                break;
            }
        }
    }
}

void
Solver::uncheckedEnqueue(Lit l, int reason)
{
    R2U_ASSERT(value(l) == LBool::Undef, "enqueue of assigned literal");
    assigns_[var(l)] = sign(l) ? LBool::False : LBool::True;
    polarity_[var(l)] = sign(l);
    reason_[var(l)] = reason;
    level_[var(l)] = decisionLevel();
    trail_.push_back(l);
}

int
Solver::propagate()
{
    int confl = -1;
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        stats_.propagations++;
        propagations_this_solve_++;
        std::vector<Watcher> &ws = watches_[p.x];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            Lit *lits = clause(w.cref).lits();
            Lit false_lit = ~p;
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            i++;

            Lit first = lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = Watcher{w.cref, first};
                continue;
            }

            // Look for a new watch.
            bool found = false;
            uint32_t sz = clause(w.cref).size();
            for (uint32_t k = 2; k < sz; k++) {
                if (value(lits[k]) != LBool::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~lits[1]).x].push_back(
                        Watcher{w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;

            // Unit or conflicting.
            ws[j++] = Watcher{w.cref, first};
            if (value(first) == LBool::False) {
                confl = w.cref;
                qhead_ = trail_.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                uncheckedEnqueue(first, w.cref);
            }
        }
        ws.resize(j);
        if (confl != -1)
            break;
    }
    return confl;
}

void
Solver::varBumpActivity(Var v)
{
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[v] >= 0)
        siftUp(heap_pos_[v]);
}

void
Solver::claBumpActivity(Clause c)
{
    c.setActivity(c.activity() + static_cast<float>(cla_inc_));
    if (c.activity() > 1e20f) {
        for (int idx : learnts_) {
            Clause l = clause(idx);
            l.setActivity(l.activity() * 1e-20f);
        }
        cla_inc_ *= 1e-20;
    }
}

uint32_t
Solver::computeLbd(const Lit *lits, uint32_t n)
{
    if (lbd_stamp_.size() < static_cast<size_t>(numVars()) + 1)
        lbd_stamp_.resize(static_cast<size_t>(numVars()) + 1, 0);
    lbd_stamp_gen_++;
    uint32_t lbd = 0;
    for (uint32_t i = 0; i < n; i++) {
        int lvl = level_[var(lits[i])];
        if (lvl > 0 && lbd_stamp_[lvl] != lbd_stamp_gen_) {
            lbd_stamp_[lvl] = lbd_stamp_gen_;
            lbd++;
        }
    }
    return std::max(lbd, 1u);
}

void
Solver::analyze(int confl, std::vector<Lit> &out_learnt,
                int &out_btlevel, uint32_t &out_lbd)
{
    int pathC = 0;
    Lit p = kLitUndef;
    out_learnt.clear();
    out_learnt.push_back(kLitUndef); // slot for the asserting literal
    int index = static_cast<int>(trail_.size()) - 1;

    do {
        R2U_ASSERT(confl != -1, "no reason in analyze");
        Clause c = clause(confl);
        if (c.learnt()) {
            claBumpActivity(c);
            // Glucose's update-on-use: a learnt clause involved in a
            // new conflict re-measures its glue; keep the smaller.
            if (c.lbd() > cfg_.glueLbd) {
                uint32_t nl = computeLbd(c.lits(), c.size());
                if (nl < c.lbd())
                    c.setLbd(nl);
            }
        }
        for (uint32_t j = (p == kLitUndef) ? 0 : 1; j < c.size();
             j++) {
            Lit q = c[j];
            if (!seen_[var(q)] && level_[var(q)] > 0) {
                varBumpActivity(var(q));
                seen_[var(q)] = 1;
                if (level_[var(q)] >= decisionLevel())
                    pathC++;
                else
                    out_learnt.push_back(q);
            }
        }
        while (!seen_[var(trail_[index--])]) {
        }
        p = trail_[index + 1];
        confl = reason_[var(p)];
        seen_[var(p)] = 0;
        pathC--;
    } while (pathC > 0);
    out_learnt[0] = ~p;

    // Conflict-clause minimization (deep).
    analyze_toclear_ = out_learnt;
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < out_learnt.size(); i++)
        abstract_levels |= 1u << (level_[var(out_learnt[i])] & 31);
    size_t j = 1;
    for (size_t i = 1; i < out_learnt.size(); i++) {
        Lit l = out_learnt[i];
        if (reason_[var(l)] == -1 || !litRedundant(l, abstract_levels))
            out_learnt[j++] = l;
    }
    out_learnt.resize(j);
    stats_.learntLiterals += out_learnt.size();
    out_lbd = computeLbd(out_learnt);

    // Find the backtrack level (second-highest level in the clause).
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learnt.size(); i++)
            if (level_[var(out_learnt[i])] >
                level_[var(out_learnt[max_i])])
                max_i = i;
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level_[var(out_learnt[1])];
    }

    for (Lit l : analyze_toclear_)
        seen_[var(l)] = 0;
    analyze_toclear_.clear();
}

bool
Solver::litRedundant(Lit p, uint32_t abstract_levels)
{
    analyze_stack_.clear();
    analyze_stack_.push_back(p);
    size_t top = analyze_toclear_.size();
    while (!analyze_stack_.empty()) {
        Lit q = analyze_stack_.back();
        analyze_stack_.pop_back();
        R2U_ASSERT(reason_[var(q)] != -1, "decision in litRedundant");
        const Clause c = clause(reason_[var(q)]);
        for (uint32_t i = 1; i < c.size(); i++) {
            Lit l = c[i];
            if (!seen_[var(l)] && level_[var(l)] > 0) {
                uint32_t abst = 1u << (level_[var(l)] & 31);
                if (reason_[var(l)] != -1 &&
                    (abst & abstract_levels) != 0) {
                    seen_[var(l)] = 1;
                    analyze_stack_.push_back(l);
                    analyze_toclear_.push_back(l);
                } else {
                    for (size_t k = top; k < analyze_toclear_.size();
                         k++)
                        seen_[var(analyze_toclear_[k])] = 0;
                    analyze_toclear_.resize(top);
                    return false;
                }
            }
        }
    }
    return true;
}

void
Solver::analyzeFinal(Lit p)
{
    conflict_core_.clear();
    conflict_core_.push_back(~p);
    if (decisionLevel() == 0)
        return;
    seen_[var(p)] = 1;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[0]; i--) {
        Var x = var(trail_[i]);
        if (!seen_[x])
            continue;
        if (reason_[x] == -1) {
            R2U_ASSERT(level_[x] > 0, "root decision in analyzeFinal");
            conflict_core_.push_back(~trail_[i]);
        } else {
            const Clause c = clause(reason_[x]);
            for (uint32_t j = 1; j < c.size(); j++)
                if (level_[var(c[j])] > 0)
                    seen_[var(c[j])] = 1;
        }
        seen_[x] = 0;
    }
    seen_[var(p)] = 0;
}

void
Solver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[level]; i--) {
        Var x = var(trail_[i]);
        assigns_[x] = LBool::Undef;
        if (heap_pos_[x] < 0 && !isEliminated(x))
            heapInsert(x);
    }
    qhead_ = static_cast<size_t>(trail_lim_[level]);
    trail_.resize(static_cast<size_t>(trail_lim_[level]));
    trail_lim_.resize(static_cast<size_t>(level));
}

// --- indexed binary max-heap on activity ---

void
Solver::heapInsert(Var v)
{
    heap_pos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    siftUp(heap_pos_[v]);
}

void
Solver::siftUp(int i)
{
    Var v = heap_[i];
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[v])
            break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = i;
}

void
Solver::siftDown(int i)
{
    Var v = heap_[i];
    int n = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            activity_[heap_[child + 1]] > activity_[heap_[child]])
            child++;
        if (activity_[heap_[child]] <= activity_[v])
            break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = i;
}

Var
Solver::heapRemoveMax()
{
    Var v = heap_[0];
    heap_pos_[v] = -1;
    Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[last] = 0;
        siftDown(0);
    }
    return v;
}

Lit
Solver::pickBranchLit()
{
    auto decideSign = [&](Var v) -> bool {
        switch (cfg_.polarity) {
          case SolverConfig::Polarity::False: return true;
          case SolverConfig::Polarity::True: return false;
          case SolverConfig::Polarity::Saved:
          case SolverConfig::Polarity::Rand: return polarity_[v];
        }
        return polarity_[v];
    };
    if (cfg_.randomFreq > 0.0 && !heap_.empty()) {
        double r =
            (nextRandom() >> 11) * (1.0 / 9007199254740992.0);
        if (r < cfg_.randomFreq) {
            Var v = heap_[nextRandom() % heap_.size()];
            if (value(v) == LBool::Undef && !isEliminated(v)) {
                stats_.randomDecisions++;
                return mkLit(v, decideSign(v));
            }
        }
    }
    while (!heapEmpty()) {
        Var v = heapRemoveMax();
        if (value(v) == LBool::Undef && !isEliminated(v))
            return mkLit(v, decideSign(v));
    }
    return kLitUndef;
}

void
Solver::reduceDB()
{
    // Exact locked set: any clause that is the reason of a currently
    // assigned variable must survive — conflict analysis walks those
    // references. (The historical `value(lits[0]) == True` check was
    // only an approximation: propagate() swaps watched literals, so a
    // reason clause's asserting literal is not guaranteed to sit at
    // index 0 when the clause is later inspected.) The locked mark
    // lives in a header bit so no side table scales with arena size.
    for (Lit l : trail_) {
        int r = reason_[var(l)];
        if (r >= 0)
            clause(r).setLocked(true);
    }

    std::vector<int> keep, removable;
    keep.reserve(learnts_.size());
    for (int cref : learnts_) {
        const Clause c = clause(cref);
        if (c.locked() || c.size() <= 2)
            keep.push_back(cref);
        else
            removable.push_back(cref);
    }
    if (cfg_.lbdReduce) {
        // Victims first: high glue, then low activity; tie-break on
        // clause index for determinism. Glue clauses (lbd <= glueLbd)
        // naturally sort to the very end, so they are only evicted
        // when the database consists of little else — an absolute
        // exemption would let them accumulate without bound and choke
        // propagation on small, conflict-dense instances.
        std::sort(removable.begin(), removable.end(),
                  [&](int a, int b) {
                      const Clause ca = clause(a);
                      const Clause cb = clause(b);
                      if (ca.lbd() != cb.lbd())
                          return ca.lbd() > cb.lbd();
                      if (ca.activity() != cb.activity())
                          return ca.activity() < cb.activity();
                      return a < b;
                  });
    } else {
        std::sort(removable.begin(), removable.end(),
                  [&](int a, int b) {
                      if (clause(a).activity() != clause(b).activity())
                          return clause(a).activity() <
                                 clause(b).activity();
                      return a < b;
                  });
    }
    size_t nremove = removable.size() / 2;
    for (size_t i = 0; i < nremove; i++) {
        int cref = removable[i];
        detachClause(cref);
        clause(cref).markDeleted();
        stats_.removedClauses++;
    }
    keep.insert(keep.end(), removable.begin() + nremove,
                removable.end());
    learnts_ = std::move(keep);

    for (Lit l : trail_) {
        int r = reason_[var(l)];
        if (r >= 0)
            clause(r).setLocked(false);
    }
    // If the keep classes (locked, binary) alone exceed the cap, the
    // reduction cannot reach it; raise the cap so the next trigger
    // waits for genuinely new learnts instead of re-running every
    // search iteration. solve() resets the cap on each call.
    if (static_cast<double>(learnts_.size()) >= max_learnts_)
        max_learnts_ = static_cast<double>(learnts_.size()) * 1.5;
}

void
Solver::simplifyDB()
{
    R2U_ASSERT(decisionLevel() == 0, "simplifyDB above root level");
    if (!ok_)
        return;
    if (propagate() != -1) {
        ok_ = false;
        return;
    }
    stats_.simplifyRuns++;

    // Level-0 assignments are facts; their reason clauses may be about
    // to disappear, so forget them.
    for (Lit l : trail_)
        reason_[var(l)] = -1;

    uint64_t removed = 0, lits_removed = 0;
    for (int cref : crefs_) {
        Clause c = clause(cref);
        if (c.deleted())
            continue; // tombstone
        bool satisfied = false;
        for (Lit l : c) {
            if (value(l) == LBool::True) {
                satisfied = true;
                break;
            }
        }
        if (satisfied) {
            c.markDeleted();
            removed++;
            continue;
        }
        uint32_t j = 0;
        for (Lit l : c)
            if (value(l) != LBool::False)
                c[j++] = l;
        lits_removed += c.size() - j;
        c.shrink(j);
        if (j == 0) {
            ok_ = false;
            return;
        }
        if (j == 1) {
            uncheckedEnqueue(c[0], -1);
            c.markDeleted();
            removed++;
        }
    }
    stats_.simplifyClausesRemoved += removed;
    stats_.simplifyLitsRemoved += lits_removed;

    // Drop tombstoned learnts, reclaim the arena space (reason crefs
    // were forgotten above, and the watch lists are about to be
    // rebuilt, so this is the one point where remapping is free),
    // then rebuild every watch list.
    size_t j = 0;
    for (int cref : learnts_)
        if (!clause(cref).deleted())
            learnts_[j++] = cref;
    learnts_.resize(j);
    garbageCollect();
    for (auto &ws : watches_)
        ws.clear();
    for (int cref : crefs_)
        if (clause(cref).size() >= 2)
            attachClause(cref);

    // New units found above still need propagating (qhead_ is behind
    // any literal enqueued during the sweep).
    if (propagate() != -1)
        ok_ = false;
    trail_at_last_simplify_ = trail_.size();
}

void
Solver::garbageCollect()
{
    std::vector<uint32_t> to;
    to.reserve(arena_.size());
    size_t out = 0;
    for (size_t i = 0; i < crefs_.size(); i++) {
        Clause c = clause(crefs_[i]);
        if (c.deleted())
            continue;
        int ncref = static_cast<int>(to.size());
        to.insert(to.end(), c.p, c.p + kClauseHeader + c.size());
        // Forwarding address for learnts_ remapping, stashed in the
        // dead clause's lbd slot.
        c.p[1] = static_cast<uint32_t>(ncref);
        crefs_[out++] = ncref;
    }
    crefs_.resize(out);
    for (int &cref : learnts_)
        cref = static_cast<int>(arena_[static_cast<size_t>(cref) + 1]);
    arena_ = std::move(to);
}

int64_t
Solver::luby(int64_t x)
{
    // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    int64_t size = 1, seq = 0;
    while (size < x + 1) {
        seq++;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) / 2;
        seq--;
        x = x % size;
    }
    return 1ll << seq;
}

bool
Solver::restartDue(int64_t conflicts_here,
                   int64_t conflicts_before_restart) const
{
    if (cfg_.restart == SolverConfig::Restart::Luby)
        return conflicts_here >= conflicts_before_restart;
    // Glucose: the recent-conflict LBD window runs hotter than the
    // all-time average -> the solver is lost, restart.
    if (lbd_window_filled_ < cfg_.glucoseWindow ||
        lbd_total_count_ == 0)
        return false;
    double recent = static_cast<double>(lbd_window_sum_) /
                    static_cast<double>(cfg_.glucoseWindow);
    double global = static_cast<double>(lbd_total_sum_) /
                    static_cast<double>(lbd_total_count_);
    return recent > cfg_.glucoseMargin * global;
}

Result
Solver::search(int64_t conflicts_before_restart)
{
    int64_t conflicts_here = 0;
    std::vector<Lit> learnt;
    while (true) {
        int confl = propagate();
        if (confl != -1) {
            stats_.conflicts++;
            conflicts_this_solve_++;
            conflicts_here++;
            if (decisionLevel() == 0) {
                ok_ = false;
                conflict_core_.clear();
                return Result::Unsat;
            }
            int btlevel;
            uint32_t lbd = 0;
            analyze(confl, learnt, btlevel, lbd);
            cancelUntil(btlevel);

            stats_.lbdSum += lbd;
            if (lbd <= cfg_.glueLbd)
                stats_.glueClauses++;
            lbd_total_sum_ += lbd;
            lbd_total_count_++;
            if (!lbd_window_.empty()) {
                if (lbd_window_filled_ <
                    static_cast<uint64_t>(lbd_window_.size())) {
                    lbd_window_sum_ += lbd;
                    lbd_window_filled_++;
                } else {
                    lbd_window_sum_ +=
                        lbd - lbd_window_[lbd_window_next_];
                }
                lbd_window_[lbd_window_next_] = lbd;
                lbd_window_next_ =
                    (lbd_window_next_ + 1) % lbd_window_.size();
            }

            if (share_pool_ && cfg_.shareLbdMax != 0 &&
                lbd <= cfg_.shareLbdMax && learnt.size() <= 64) {
                if (share_pool_->publish(share_self_, lbd, learnt))
                    stats_.sharedExported++;
            }

            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], -1);
            } else {
                int cref = allocClause(
                    learnt.data(), static_cast<uint32_t>(learnt.size()),
                    true, lbd, static_cast<float>(cla_inc_));
                crefs_.push_back(cref);
                learnts_.push_back(cref);
                attachClause(cref);
                uncheckedEnqueue(learnt[0], cref);
            }
            varDecayActivity();
            cla_inc_ /= cfg_.claDecay;
        } else {
            if (restartDue(conflicts_here, conflicts_before_restart)) {
                cancelUntil(0);
                stats_.restarts++;
                // A fresh span must refill the window before it can
                // trigger the Glucose criterion again.
                lbd_window_filled_ = 0;
                lbd_window_sum_ = 0;
                lbd_window_next_ = 0;
                return Result::Unknown;
            }
            StopReason stop = stopCheck();
            if (stop != StopReason::None) {
                stop_reason_ = stop;
                cancelUntil(0);
                return Result::Unknown;
            }
            bool reduce_due;
            if (cfg_.lbdReduce && cfg_.maxLearntsOverride <= 0.0)
                reduce_due =
                    !learnts_.empty() &&
                    conflicts_this_solve_ - conflicts_at_last_reduce_ >=
                        cfg_.reduceFirst +
                            cfg_.reduceInc * reduces_this_solve_;
            else
                reduce_due = static_cast<double>(learnts_.size()) >=
                             max_learnts_;
            if (reduce_due) {
                reduceDB();
                reduces_this_solve_++;
                conflicts_at_last_reduce_ = conflicts_this_solve_;
            }

            // Establish assumptions, then decide.
            Lit next = kLitUndef;
            while (decisionLevel() <
                   static_cast<int>(assumptions_.size())) {
                Lit p = assumptions_[decisionLevel()];
                if (value(p) == LBool::True) {
                    trail_lim_.push_back(
                        static_cast<int>(trail_.size()));
                } else if (value(p) == LBool::False) {
                    analyzeFinal(~p);
                    return Result::Unsat;
                } else {
                    next = p;
                    break;
                }
            }
            if (next == kLitUndef) {
                stats_.decisions++;
                next = pickBranchLit();
                if (next == kLitUndef) {
                    // All variables assigned: model found.
                    model_.assign(assigns_.begin(), assigns_.end());
                    return Result::Sat;
                }
            } else {
                stats_.decisions++;
            }
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            uncheckedEnqueue(next, -1);
        }
    }
}

StopReason
Solver::stopCheck()
{
    if (interrupt_.load(std::memory_order_relaxed) ||
        (ext_interrupt_ &&
         ext_interrupt_->load(std::memory_order_relaxed)))
        return StopReason::Interrupt;
    if (conflict_budget_ >= 0 &&
        conflicts_this_solve_ >= conflict_budget_)
        return StopReason::ConflictBudget;
    if (propagation_budget_ >= 0 &&
        propagations_this_solve_ >= propagation_budget_)
        return StopReason::PropagationBudget;
    if (has_deadline_ && --stop_check_countdown_ <= 0) {
        constexpr int kStopCheckInterval = 256;
        stop_check_countdown_ = kStopCheckInterval;
        if (std::chrono::steady_clock::now() >= deadline_point_)
            return StopReason::Deadline;
    }
    return StopReason::None;
}

void
Solver::setShare(ClausePool *pool, unsigned self, Lit import_guard)
{
    share_pool_ = pool;
    share_self_ = self;
    share_guard_ = import_guard;
}

bool
Solver::importClause(const std::vector<Lit> &lits_in, uint32_t lbd)
{
    R2U_ASSERT(decisionLevel() == 0, "import above root level");
    std::vector<Lit> lits;
    lits.reserve(lits_in.size() + 1);
    for (Lit l : lits_in) {
        R2U_ASSERT(var(l) >= 0 && var(l) < numVars(),
                   "imported literal out of range");
        // A preprocessed racer dropped this variable's defining
        // clauses; re-introducing it is sound but pointless.
        if (isEliminated(var(l)))
            return false;
        // Guarded import of a clause already containing ~guard would
        // be a tautology.
        if (share_guard_ != kLitUndef && l == ~share_guard_)
            return false;
        if (l == share_guard_)
            continue; // guard re-added below
        LBool v = value(l);
        if (v == LBool::True)
            return false; // satisfied at level 0 already
        if (v == LBool::False)
            continue;
        lits.push_back(l);
    }
    if (share_guard_ != kLitUndef) {
        if (value(share_guard_) == LBool::True)
            return false;
        if (value(share_guard_) != LBool::False)
            lits.push_back(share_guard_);
    }
    if (lits.empty()) {
        ok_ = false;
        return false;
    }
    if (lits.size() == 1) {
        uncheckedEnqueue(lits[0], -1);
        stats_.sharedImported++;
        stats_.sharedImportedUnits++;
        return true;
    }
    int cref =
        allocClause(lits.data(), static_cast<uint32_t>(lits.size()),
                    true, lbd, static_cast<float>(cla_inc_));
    crefs_.push_back(cref);
    learnts_.push_back(cref);
    attachClause(cref);
    stats_.sharedImported++;
    return true;
}

bool
Solver::exchangeClauses()
{
    std::vector<ClausePool::Entry> in;
    share_pool_->collect(share_self_, in);
    for (const auto &e : in) {
        importClause(e.lits, e.lbd);
        if (!ok_)
            return false;
    }
    if (propagate() != -1) {
        ok_ = false;
        return false;
    }
    return true;
}

Result
Solver::solve(const std::vector<Lit> &assumptions)
{
    conflict_core_.clear();
    // Invalidate the previous call's model up front: a non-Sat result
    // must not leave a stale (satisfying-looking) assignment around
    // for modelValue() to read.
    model_.clear();
    stop_reason_ = StopReason::None;
    if (!ok_)
        return Result::Unsat;
    for (Lit a : assumptions)
        R2U_ASSERT(!isEliminated(var(a)),
                   "assumption on eliminated variable %d", var(a));
    assumptions_ = assumptions;
    conflicts_this_solve_ = 0;
    propagations_this_solve_ = 0;
    reduces_this_solve_ = 0;
    conflicts_at_last_reduce_ = 0;
    has_deadline_ = deadline_seconds_ >= 0.0;
    if (has_deadline_) {
        deadline_point_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(deadline_seconds_));
    }
    stop_check_countdown_ = 1; // read the clock on the first check
    max_learnts_ =
        cfg_.maxLearntsOverride > 0.0
            ? cfg_.maxLearntsOverride
            : std::max<double>(
                  static_cast<double>(crefs_.size()) / 3.0, 1000.0);
    lbd_window_.assign(cfg_.glucoseWindow, 0);
    lbd_window_next_ = 0;
    lbd_window_filled_ = 0;
    lbd_window_sum_ = 0;
    lbd_total_sum_ = 0;
    lbd_total_count_ = 0;

    // Root facts added since the last inprocessing pass (an
    // incremental caller retiring a query with a unit ~act, or units
    // learned in the previous solve) satisfy whole swaths of the
    // clause DB; collect them now so this query's propagation does
    // not wade through dead clauses. The trigger is trail growth, so
    // back-to-back solves with no new facts skip the sweep.
    if (cfg_.inprocessPeriod != 0 &&
        trail_.size() > trail_at_last_simplify_) {
        restarts_since_simplify_ = 0;
        simplifyDB();
        if (!ok_) {
            cancelUntil(0);
            assumptions_.clear();
            return Result::Unsat;
        }
    }

    Result status = Result::Unknown;
    int64_t restart = 0;
    while (status == Result::Unknown) {
        int64_t budget =
            cfg_.restart == SolverConfig::Restart::Luby
                ? luby(restart++) * cfg_.lubyUnit
                : INT64_MAX;
        status = search(budget);
        if (status != Result::Unknown)
            break;
        if (stop_reason_ != StopReason::None)
            break;
        // Restart boundary, back at level 0: the deterministic point
        // for clause import and database inprocessing.
        if (share_pool_ && !exchangeClauses()) {
            status = Result::Unsat;
            break;
        }
        if (cfg_.inprocessPeriod != 0 &&
            ++restarts_since_simplify_ >= cfg_.inprocessPeriod) {
            restarts_since_simplify_ = 0;
            simplifyDB();
            if (!ok_) {
                status = Result::Unsat;
                break;
            }
        }
    }
    if (status == Result::Sat) {
        if (reconstruction_ && !reconstruction_->records().empty())
            Simplifier::extendModel(model_,
                                    reconstruction_->records());
        for (auto &m : model_)
            if (m == LBool::Undef)
                m = LBool::False;
    }
    cancelUntil(0);
    assumptions_.clear();
    return status;
}

bool
Solver::preprocess(const SimplifyOptions &options,
                   const std::vector<Var> &frozen)
{
    R2U_ASSERT(decisionLevel() == 0, "preprocess above root level");
    if (!ok_)
        return false;
    if (propagate() != -1) {
        ok_ = false;
        return false;
    }
    auto t0 = std::chrono::steady_clock::now();

    Simplifier simp(numVars(), options);
    for (Var v : frozen)
        simp.freeze(v);
    for (Lit l : trail_)
        simp.addClause({l});
    for (int cref : crefs_) {
        const Clause c = clause(cref);
        if (c.deleted() || c.learnt())
            continue;
        simp.addClause(std::vector<Lit>(c.begin(), c.end()));
    }
    bool sat_possible = simp.run();
    stats_.preprocessRuns++;
    stats_.preprocessSeconds +=
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (!sat_possible) {
        ok_ = false;
        return false;
    }
    stats_.preprocessVarsEliminated += simp.stats().varsEliminated;
    stats_.preprocessClausesRemoved += simp.stats().clausesRemoved;

    // Rebuild the solver database from the simplified CNF.
    uint64_t added_before = added_clauses_;
    arena_.clear();
    crefs_.clear();
    learnts_.clear();
    for (auto &ws : watches_)
        ws.clear();
    trail_.clear();
    trail_lim_.clear();
    qhead_ = 0;
    std::fill(assigns_.begin(), assigns_.end(), LBool::Undef);
    std::fill(reason_.begin(), reason_.end(), -1);
    std::fill(level_.begin(), level_.end(), 0);
    eliminated_.assign(static_cast<size_t>(numVars()), 0);
    for (Var v = 0; v < numVars(); v++)
        if (simp.isEliminated(v))
            eliminated_[static_cast<size_t>(v)] = 1;

    for (const auto &cl : simp.result()) {
        if (!addClause(cl))
            break;
    }
    added_clauses_ = added_before; // reporting: not new user clauses

    // Eliminated variables must never be decided again.
    heap_.clear();
    std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
    for (Var v = 0; v < numVars(); v++)
        if (!eliminated_[static_cast<size_t>(v)] &&
            value(v) == LBool::Undef)
            heapInsert(v);

    if (!reconstruction_)
        reconstruction_ = std::make_unique<Simplifier>();
    reconstruction_->absorb(simp.takeRecords());
    return ok_;
}

void
Solver::exportCnf(std::vector<std::vector<Lit>> &out,
                  bool include_learnts) const
{
    R2U_ASSERT(decisionLevel() == 0, "exportCnf above root level");
    size_t root = trail_lim_.empty()
                      ? trail_.size()
                      : static_cast<size_t>(trail_lim_[0]);
    for (size_t i = 0; i < root; i++)
        out.push_back({trail_[i]});
    for (int cref : crefs_) {
        const Clause c = clause(cref);
        if (c.deleted())
            continue; // tombstone
        if (c.learnt() && !include_learnts)
            continue;
        out.emplace_back(c.begin(), c.end());
    }
}

void
Solver::cloneFrom(const Solver &other)
{
    R2U_ASSERT(other.decisionLevel() == 0,
               "cloneFrom of a solver above root level");
    ok_ = other.ok_;
    cfg_ = other.cfg_;
    arena_ = other.arena_;
    crefs_ = other.crefs_;
    learnts_ = other.learnts_;
    watches_ = other.watches_;
    assigns_ = other.assigns_;
    polarity_ = other.polarity_;
    activity_ = other.activity_;
    heap_ = other.heap_;
    heap_pos_ = other.heap_pos_;
    trail_ = other.trail_;
    trail_lim_.clear();
    reason_ = other.reason_;
    level_ = other.level_;
    eliminated_ = other.eliminated_;
    qhead_ = other.qhead_;
    seen_ = other.seen_;
    lbd_stamp_ = other.lbd_stamp_;
    lbd_stamp_gen_ = other.lbd_stamp_gen_;
    rng_state_ = other.rng_state_;
    var_inc_ = other.var_inc_;
    cla_inc_ = other.cla_inc_;
    added_clauses_ = other.added_clauses_;
    trail_at_last_simplify_ = other.trail_at_last_simplify_;
    if (other.reconstruction_ &&
        !other.reconstruction_->records().empty()) {
        reconstruction_ = std::make_unique<Simplifier>();
        reconstruction_->absorb(other.reconstruction_->records());
    } else {
        reconstruction_.reset();
    }
    // Per-solve transients start fresh: budgets, deadline, interrupt
    // wiring, shared pool, model, and statistics stay this solver's
    // own.
    model_.clear();
    conflict_core_.clear();
    assumptions_.clear();
    stop_reason_ = StopReason::None;
    restarts_since_simplify_ = 0;
}

void
Solver::adoptModel(std::vector<LBool> model)
{
    R2U_ASSERT(model.size() >= static_cast<size_t>(numVars()),
               "adopted model does not cover the variable space");
    model_ = std::move(model);
}

bool
Solver::modelValue(Var v) const
{
    R2U_ASSERT(v >= 0 && v < static_cast<int>(model_.size()),
               "modelValue of unknown var %d", v);
    return model_[v] == LBool::True;
}

} // namespace r2u::sat
