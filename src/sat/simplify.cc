#include "sat/simplify.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u::sat
{

Simplifier::Simplifier() = default;

Simplifier::Simplifier(int num_vars, const SimplifyOptions &opts)
    : opts_(opts), num_vars_(num_vars)
{
    occ_.resize(2 * static_cast<size_t>(num_vars));
    assigns_.resize(static_cast<size_t>(num_vars), LBool::Undef);
    frozen_.resize(static_cast<size_t>(num_vars), 0);
    eliminated_.resize(static_cast<size_t>(num_vars), 0);
}

void
Simplifier::freeze(Var v)
{
    R2U_ASSERT(v >= 0 && v < num_vars_, "freeze of unknown var %d", v);
    frozen_[static_cast<size_t>(v)] = 1;
}

uint64_t
Simplifier::signature(const std::vector<Lit> &lits)
{
    uint64_t sig = 0;
    for (Lit l : lits)
        sig |= 1ull << (var(l) & 63);
    return sig;
}

bool
Simplifier::enqueueUnit(Lit l)
{
    LBool v = assigns_[static_cast<size_t>(var(l))] ^ sign(l);
    if (v == LBool::True)
        return true;
    if (v == LBool::False) {
        ok_ = false;
        return false;
    }
    assigns_[static_cast<size_t>(var(l))] =
        sign(l) ? LBool::False : LBool::True;
    units_.push_back(l);
    return true;
}

void
Simplifier::addClause(std::vector<Lit> lits)
{
    R2U_ASSERT(!ran_, "addClause after run()");
    addClauseInternal(std::move(lits));
}

bool
Simplifier::addClauseInternal(std::vector<Lit> lits)
{
    if (!ok_)
        return false;
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = kLitUndef;
    for (Lit l : lits) {
        R2U_ASSERT(var(l) >= 0 && var(l) < num_vars_, "bad literal");
        LBool v = assigns_[static_cast<size_t>(var(l))] ^ sign(l);
        if (v == LBool::True || l == ~prev)
            return true; // satisfied or tautology
        if (v != LBool::False && l != prev) {
            out.push_back(l);
            prev = l;
        }
    }
    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1)
        return enqueueUnit(out[0]);
    int idx = static_cast<int>(clauses_.size());
    sigs_.push_back(signature(out));
    for (Lit l : out)
        occ_[static_cast<size_t>(l.x)].push_back(idx);
    clauses_.push_back(std::move(out));
    pushToQueue(idx);
    return true;
}

void
Simplifier::removeClause(int idx)
{
    auto &c = clauses_[static_cast<size_t>(idx)];
    if (c.empty())
        return;
    c.clear();
    c.shrink_to_fit();
    sigs_[static_cast<size_t>(idx)] = 0;
    stats_.clausesRemoved++;
}

bool
Simplifier::strengthenClause(int idx, Lit l)
{
    auto &c = clauses_[static_cast<size_t>(idx)];
    auto it = std::lower_bound(c.begin(), c.end(), l);
    R2U_ASSERT(it != c.end() && *it == l, "strengthen of absent lit");
    c.erase(it);
    if (c.empty()) {
        ok_ = false;
        return false;
    }
    if (c.size() == 1) {
        Lit unit = c[0];
        removeClause(idx);
        return enqueueUnit(unit);
    }
    sigs_[static_cast<size_t>(idx)] = signature(c);
    pushToQueue(idx); // a shorter clause may now subsume others
    return true;
}

void
Simplifier::pushToQueue(int idx)
{
    if (in_queue_.size() <= static_cast<size_t>(idx))
        in_queue_.resize(static_cast<size_t>(idx) + 1, 0);
    if (!in_queue_[static_cast<size_t>(idx)]) {
        in_queue_[static_cast<size_t>(idx)] = 1;
        queue_.push_back(idx);
    }
}

std::vector<int>
Simplifier::occurrences(Lit l)
{
    auto &o = occ_[static_cast<size_t>(l.x)];
    std::vector<int> live;
    size_t j = 0;
    for (int idx : o) {
        const auto &c = clauses_[static_cast<size_t>(idx)];
        if (c.empty())
            continue; // deleted clause
        if (!std::binary_search(c.begin(), c.end(), l))
            continue; // literal strengthened away
        o[j++] = idx;
        live.push_back(idx);
    }
    o.resize(j);
    return live;
}

bool
Simplifier::propagateUnits()
{
    while (qhead_ < units_.size()) {
        Lit l = units_[qhead_++];
        stats_.unitsPropagated++;
        for (int idx : occurrences(l))
            removeClause(idx); // satisfied
        for (int idx : occurrences(~l))
            if (!strengthenClause(idx, ~l))
                return false;
    }
    return ok_;
}

int
Simplifier::subsumes(const std::vector<Lit> &a,
                     const std::vector<Lit> &b)
{
    size_t i = 0, j = 0;
    int flip = -1;
    while (i < a.size()) {
        if (j >= b.size())
            return -2;
        if (var(a[i]) == var(b[j])) {
            if (a[i] != b[j]) {
                if (flip != -1)
                    return -2; // two flipped literals: no resolution
                flip = b[j].x;
            }
            i++;
            j++;
        } else if (var(b[j]) < var(a[i])) {
            j++;
        } else {
            return -2; // a[i]'s variable absent from b
        }
    }
    return flip == -1 ? -1 : flip;
}

bool
Simplifier::subsumeAll()
{
    while (!queue_.empty()) {
        int idx = queue_.back();
        queue_.pop_back();
        in_queue_[static_cast<size_t>(idx)] = 0;
        const auto &c = clauses_[static_cast<size_t>(idx)];
        if (c.empty())
            continue;
        // Search through the occurrence list of c's rarest literal:
        // any clause c subsumes must contain every literal of c.
        Lit best = c[0];
        for (Lit l : c)
            if (occ_[static_cast<size_t>(l.x)].size() <
                occ_[static_cast<size_t>(best.x)].size())
                best = l;
        if (occ_[static_cast<size_t>(best.x)].size() >
            opts_.subsumeOccLimit)
            continue;
        for (int j : occurrences(best)) {
            if (j == idx)
                continue;
            const auto &d = clauses_[static_cast<size_t>(j)];
            if (d.empty() || c.empty())
                continue;
            if (c.size() > d.size())
                continue;
            if ((sigs_[static_cast<size_t>(idx)] &
                 ~sigs_[static_cast<size_t>(j)]) != 0)
                continue;
            int res = subsumes(c, d);
            if (res == -2)
                continue;
            if (res == -1) {
                removeClause(j);
                stats_.clausesSubsumed++;
            } else {
                // Self-subsuming resolution: drop the flipped literal.
                stats_.litsStrengthened++;
                if (!strengthenClause(j, Lit{res}))
                    return false;
            }
        }
        if (!ok_)
            return false;
    }
    return true;
}

namespace
{

/**
 * Resolvent of sorted clauses `a` and `b` on pivot variable `v`.
 * Returns false if the resolvent is a tautology.
 */
bool
resolve(const std::vector<Lit> &a, const std::vector<Lit> &b, Var v,
        std::vector<Lit> &out)
{
    out.clear();
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        Lit l;
        if (j >= b.size() ||
            (i < a.size() && a[i].x <= b[j].x)) {
            l = a[i];
            if (j < b.size() && a[i] == b[j])
                j++;
            i++;
        } else {
            l = b[j];
            j++;
        }
        if (var(l) == v)
            continue;
        if (!out.empty() && out.back() == l)
            continue; // duplicate
        if (!out.empty() && out.back() == ~l)
            return false; // x and ~x are adjacent in sorted order
        out.push_back(l);
    }
    return true;
}

} // namespace

bool
Simplifier::eliminateVar(Var v)
{
    size_t vi = static_cast<size_t>(v);
    if (frozen_[vi] || eliminated_[vi] ||
        assigns_[vi] != LBool::Undef)
        return true;
    std::vector<int> pos = occurrences(mkLit(v));
    std::vector<int> neg = occurrences(mkLit(v, true));
    if (pos.empty() && neg.empty())
        return true; // unused var: left to the search (free choice)
    if (pos.size() > opts_.maxOccurrences ||
        neg.size() > opts_.maxOccurrences)
        return true;

    // Dry run: count the non-tautological resolvents; eliminating must
    // not grow the database (bounded variable elimination).
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> r;
    for (int p : pos) {
        for (int n : neg) {
            if (!resolve(clauses_[static_cast<size_t>(p)],
                         clauses_[static_cast<size_t>(n)], v, r))
                continue;
            if (r.size() > opts_.maxResolventSize)
                return true;
            resolvents.push_back(r);
            if (resolvents.size() >
                pos.size() + neg.size() + opts_.maxGrowth)
                return true;
        }
    }

    // Commit. Record the smaller occurrence side (pivot literal
    // first), then the default unit of the opposite polarity —
    // pushed last so the reverse walk in extendModel() applies the
    // default before any stored clause can override it.
    bool pure = pos.empty() || neg.empty();
    bool pos_smaller = pos.size() <= neg.size();
    const std::vector<int> &smaller = pos_smaller ? pos : neg;
    Lit pivot = mkLit(v, !pos_smaller);
    for (int idx : smaller) {
        ElimRecord rec;
        rec.clause = clauses_[static_cast<size_t>(idx)];
        auto it =
            std::find(rec.clause.begin(), rec.clause.end(), pivot);
        R2U_ASSERT(it != rec.clause.end(), "pivot absent from side");
        std::swap(rec.clause[0], *it);
        records_.push_back(std::move(rec));
    }
    records_.push_back(ElimRecord{{~pivot}});

    for (int idx : pos)
        removeClause(idx);
    for (int idx : neg)
        removeClause(idx);
    eliminated_[vi] = 1;
    stats_.varsEliminated++;
    if (pure)
        stats_.pureLiterals++;

    for (auto &res : resolvents) {
        stats_.resolventsAdded++;
        if (!addClauseInternal(std::move(res)))
            return false;
    }
    return ok_;
}

bool
Simplifier::eliminateVars()
{
    // Cheapest variables first: fewest occurrences eliminate with the
    // least resolution work and the best odds of shrinking the CNF.
    std::vector<uint64_t> cnt(static_cast<size_t>(num_vars_), 0);
    for (const auto &c : clauses_)
        for (Lit l : c)
            cnt[static_cast<size_t>(var(l))]++;
    std::vector<Var> order;
    order.reserve(static_cast<size_t>(num_vars_));
    for (Var v = 0; v < num_vars_; v++)
        if (cnt[static_cast<size_t>(v)] > 0)
            order.push_back(v);
    std::sort(order.begin(), order.end(), [&](Var a, Var b) {
        uint64_t ca = cnt[static_cast<size_t>(a)];
        uint64_t cb = cnt[static_cast<size_t>(b)];
        if (ca != cb)
            return ca < cb;
        return a < b;
    });
    for (Var v : order) {
        if (!eliminateVar(v))
            return false;
        if (qhead_ < units_.size() && !propagateUnits())
            return false;
    }
    return ok_;
}

bool
Simplifier::run()
{
    if (!ok_)
        return false;
    ran_ = true;
    for (unsigned round = 0; round < opts_.maxRounds; round++) {
        uint64_t before = stats_.unitsPropagated +
                          stats_.clausesSubsumed +
                          stats_.litsStrengthened +
                          stats_.varsEliminated +
                          stats_.clausesRemoved;
        if (!propagateUnits())
            return false;
        if (opts_.subsume && !subsumeAll())
            return false;
        if (opts_.varElim && !eliminateVars())
            return false;
        uint64_t after = stats_.unitsPropagated +
                         stats_.clausesSubsumed +
                         stats_.litsStrengthened +
                         stats_.varsEliminated +
                         stats_.clausesRemoved;
        if (after == before)
            break;
    }
    if (!propagateUnits())
        return false;
    return ok_;
}

std::vector<std::vector<Lit>>
Simplifier::result() const
{
    std::vector<std::vector<Lit>> out;
    out.reserve(units_.size() + clauses_.size());
    for (Lit l : units_)
        out.push_back({l});
    for (const auto &c : clauses_)
        if (!c.empty())
            out.push_back(c);
    return out;
}

void
Simplifier::absorb(std::vector<ElimRecord> recs)
{
    records_.insert(records_.end(),
                    std::make_move_iterator(recs.begin()),
                    std::make_move_iterator(recs.end()));
}

void
Simplifier::extendModel(std::vector<LBool> &model,
                        const std::vector<ElimRecord> &records)
{
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        const auto &cl = it->clause;
        R2U_ASSERT(!cl.empty(), "empty reconstruction record");
        bool satisfied = false;
        for (size_t i = 1; i < cl.size(); i++) {
            Lit l = cl[i];
            LBool v = model[static_cast<size_t>(var(l))] ^ sign(l);
            if (v == LBool::True) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) {
            Lit p = cl[0];
            model[static_cast<size_t>(var(p))] =
                sign(p) ? LBool::False : LBool::True;
        }
    }
}

} // namespace r2u::sat
