#include "sat/cnf.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u::sat
{

CnfBuilder::CnfBuilder(Solver &solver) : solver_(solver)
{
    true_lit_ = mkLit(solver_.newVar());
    solver_.addClause(true_lit_);
}

Lit
CnfBuilder::freshLit()
{
    return mkLit(solver_.newVar());
}

Lit
CnfBuilder::mkAnd(Lit a, Lit b)
{
    // Constant folding and trivial cases.
    if (isFalse(a) || isFalse(b))
        return falseLit();
    if (isTrue(a))
        return b;
    if (isTrue(b))
        return a;
    if (a == b)
        return a;
    if (a == ~b)
        return falseLit();

    if (b.x < a.x)
        std::swap(a, b);
    auto key = std::make_pair(a.x, b.x);
    auto it = and_cache_.find(key);
    if (it != and_cache_.end())
        return it->second;

    Lit y = freshLit();
    solver_.addClause(~y, a);
    solver_.addClause(~y, b);
    solver_.addClause(~a, ~b, y);
    and_cache_.emplace(key, y);
    return y;
}

Lit
CnfBuilder::mkXor(Lit a, Lit b)
{
    if (isFalse(a))
        return b;
    if (isFalse(b))
        return a;
    if (isTrue(a))
        return ~b;
    if (isTrue(b))
        return ~a;
    if (a == b)
        return falseLit();
    if (a == ~b)
        return trueLit();

    // Normalize: strip signs into a result inversion.
    bool invert = false;
    if (sign(a)) {
        a = ~a;
        invert = !invert;
    }
    if (sign(b)) {
        b = ~b;
        invert = !invert;
    }
    if (b.x < a.x)
        std::swap(a, b);
    auto key = std::make_pair(a.x, b.x);
    auto it = xor_cache_.find(key);
    Lit y;
    if (it != xor_cache_.end()) {
        y = it->second;
    } else {
        y = freshLit();
        solver_.addClause(~y, a, b);
        solver_.addClause({~y, ~a, ~b});
        solver_.addClause({y, ~a, b});
        solver_.addClause({y, a, ~b});
        xor_cache_.emplace(key, y);
    }
    return invert ? ~y : y;
}

Lit
CnfBuilder::mkMux(Lit sel, Lit t, Lit f)
{
    if (isTrue(sel))
        return t;
    if (isFalse(sel))
        return f;
    if (t == f)
        return t;
    if (t == ~f)
        return mkXor(sel, f);
    if (isTrue(t))
        return mkOr(sel, f);
    if (isFalse(t))
        return mkAnd(~sel, f);
    if (isTrue(f))
        return mkOr(~sel, t);
    if (isFalse(f))
        return mkAnd(sel, t);
    if (sel == t)
        return mkOr(sel, f);
    if (sel == ~t)
        return mkAnd(~sel, f);
    if (sel == f)
        return mkAnd(sel, t);
    if (sel == ~f)
        return mkOr(~sel, t);

    // Canonicalize the select polarity, then encode the mux as a
    // single variable with six clauses (two redundant, for stronger
    // unit propagation) instead of two ANDs and an OR.
    if (sign(sel)) {
        sel = ~sel;
        std::swap(t, f);
    }
    auto key = std::array<int, 3>{sel.x, t.x, f.x};
    auto it = mux_cache_.find(key);
    if (it != mux_cache_.end())
        return it->second;

    Lit y = freshLit();
    solver_.addClause({~sel, ~t, y});
    solver_.addClause({~sel, t, ~y});
    solver_.addClause({sel, ~f, y});
    solver_.addClause({sel, f, ~y});
    solver_.addClause({~t, ~f, y});
    solver_.addClause({t, f, ~y});
    mux_cache_.emplace(key, y);
    return y;
}

Lit
CnfBuilder::mkAndN(const std::vector<Lit> &ls)
{
    Lit acc = trueLit();
    for (Lit l : ls)
        acc = mkAnd(acc, l);
    return acc;
}

Lit
CnfBuilder::mkOrN(const std::vector<Lit> &ls)
{
    Lit acc = falseLit();
    for (Lit l : ls)
        acc = mkOr(acc, l);
    return acc;
}

Lit
CnfBuilder::mkOrTree(std::vector<Lit> ls)
{
    if (ls.empty())
        return falseLit();
    while (ls.size() > 1) {
        size_t out = 0;
        for (size_t i = 0; i + 1 < ls.size(); i += 2)
            ls[out++] = mkOr(ls[i], ls[i + 1]);
        if (ls.size() & 1)
            ls[out++] = ls.back();
        ls.resize(out);
    }
    return ls[0];
}

std::vector<Lit>
CnfBuilder::mkDecodeW(const Word &a)
{
    R2U_ASSERT(a.size() <= 24, "decode of a %zu-bit address", a.size());
    std::vector<Lit> out{trueLit()};
    for (Lit bit : a) {
        size_t sz = out.size();
        out.resize(2 * sz);
        for (size_t i = 0; i < sz; i++) {
            out[i + sz] = mkAnd(out[i], bit);
            out[i] = mkAnd(out[i], ~bit);
        }
    }
    return out;
}

Word
CnfBuilder::mkSelectW(const std::vector<Lit> &onehot,
                      const std::vector<Word> &words, unsigned width)
{
    R2U_ASSERT(words.size() <= onehot.size(),
               "select of %zu words through a %zu-line decode",
               words.size(), onehot.size());
    // A constant-true line wins outright: exactly one line is true,
    // so every other line must be constant-false.
    for (size_t i = 0; i < onehot.size(); i++)
        if (isTrue(onehot[i]))
            return i < words.size() ? words[i] : constWord(width, 0);

    Word out(width);
    for (unsigned b = 0; b < width; b++) {
        bool defined = false;
        for (size_t i = 0; i < words.size() && !defined; i++)
            defined = !isFalse(onehot[i]) && !isFalse(words[i][b]);
        if (!defined) {
            out[b] = falseLit();
            continue;
        }
        // out[b] <-> OR_i (onehot[i] & words[i][b]). Because exactly
        // one line is true, one implication pair per live line fully
        // defines the output — no auxiliary and/or variables.
        Lit y = freshLit();
        for (size_t i = 0; i < onehot.size(); i++) {
            Lit o = onehot[i];
            if (isFalse(o))
                continue;
            Lit a = i < words.size() ? words[i][b] : falseLit();
            if (isTrue(a)) {
                solver_.addClause(~o, y);
            } else if (isFalse(a)) {
                solver_.addClause(~o, ~y);
            } else {
                solver_.addClause({~o, ~a, y});
                solver_.addClause({~o, a, ~y});
            }
        }
        out[b] = y;
    }
    return out;
}

Word
CnfBuilder::constWord(const Bits &value)
{
    Word w(value.width());
    for (unsigned i = 0; i < value.width(); i++)
        w[i] = value.bit(i) ? trueLit() : falseLit();
    return w;
}

Word
CnfBuilder::constWord(unsigned width, uint64_t value)
{
    return constWord(Bits(width, value));
}

Word
CnfBuilder::freshWord(unsigned width)
{
    Word w(width);
    for (unsigned i = 0; i < width; i++)
        w[i] = freshLit();
    return w;
}

Word
CnfBuilder::mkAddW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "add width mismatch");
    Word sum(a.size());
    Lit carry = falseLit();
    for (size_t i = 0; i < a.size(); i++) {
        Lit axb = mkXor(a[i], b[i]);
        sum[i] = mkXor(axb, carry);
        carry = mkOr(mkAnd(a[i], b[i]), mkAnd(axb, carry));
    }
    return sum;
}

Word
CnfBuilder::mkNegW(const Word &a)
{
    Word inv = mkNotW(a);
    Word one = constWord(static_cast<unsigned>(a.size()), 1);
    return mkAddW(inv, one);
}

Word
CnfBuilder::mkSubW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "sub width mismatch");
    // a - b = a + ~b + 1
    Word sum(a.size());
    Lit carry = trueLit();
    for (size_t i = 0; i < a.size(); i++) {
        Lit nb = ~b[i];
        Lit axb = mkXor(a[i], nb);
        sum[i] = mkXor(axb, carry);
        carry = mkOr(mkAnd(a[i], nb), mkAnd(axb, carry));
    }
    return sum;
}

Word
CnfBuilder::mkAndW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "and width mismatch");
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = mkAnd(a[i], b[i]);
    return r;
}

Word
CnfBuilder::mkOrW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "or width mismatch");
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = mkOr(a[i], b[i]);
    return r;
}

Word
CnfBuilder::mkXorW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "xor width mismatch");
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = mkXor(a[i], b[i]);
    return r;
}

Word
CnfBuilder::mkNotW(const Word &a)
{
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = ~a[i];
    return r;
}

Word
CnfBuilder::mkMuxW(Lit sel, const Word &t, const Word &f)
{
    R2U_ASSERT(t.size() == f.size(), "mux width mismatch");
    Word r(t.size());
    for (size_t i = 0; i < t.size(); i++)
        r[i] = mkMux(sel, t[i], f[i]);
    return r;
}

Lit
CnfBuilder::mkEqW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "eq width mismatch");
    Lit acc = trueLit();
    for (size_t i = 0; i < a.size(); i++)
        acc = mkAnd(acc, mkEq(a[i], b[i]));
    return acc;
}

Lit
CnfBuilder::mkUltW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "ult width mismatch");
    // Ripple from LSB: lt_i = (~a & b) | (a==b) & lt_{i-1}
    Lit lt = falseLit();
    for (size_t i = 0; i < a.size(); i++) {
        Lit here_lt = mkAnd(~a[i], b[i]);
        Lit here_eq = mkEq(a[i], b[i]);
        lt = mkOr(here_lt, mkAnd(here_eq, lt));
    }
    return lt;
}

Lit
CnfBuilder::mkSltW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size() && !a.empty(), "slt width mismatch");
    Lit sa = a.back(), sb = b.back();
    Lit ult = mkUltW(a, b);
    // Different signs: a < b iff a negative. Same sign: unsigned compare.
    return mkMux(mkXor(sa, sb), sa, ult);
}

Lit
CnfBuilder::mkRedOrW(const Word &a)
{
    Lit acc = falseLit();
    for (Lit l : a)
        acc = mkOr(acc, l);
    return acc;
}

Lit
CnfBuilder::mkRedAndW(const Word &a)
{
    Lit acc = trueLit();
    for (Lit l : a)
        acc = mkAnd(acc, l);
    return acc;
}

Word
CnfBuilder::mkShlW(const Word &a, const Word &sh)
{
    Word cur = a;
    unsigned n = static_cast<unsigned>(a.size());
    for (size_t s = 0; s < sh.size(); s++) {
        unsigned amount = 1u << s;
        if (amount >= n) {
            // Shifting by >= width zeroes the word if this bit is set.
            Word zero = constWord(n, 0);
            cur = mkMuxW(sh[s], zero, cur);
            continue;
        }
        Word shifted(n);
        for (unsigned i = 0; i < n; i++)
            shifted[i] = (i >= amount) ? cur[i - amount] : falseLit();
        cur = mkMuxW(sh[s], shifted, cur);
    }
    return cur;
}

Word
CnfBuilder::mkLshrW(const Word &a, const Word &sh)
{
    Word cur = a;
    unsigned n = static_cast<unsigned>(a.size());
    for (size_t s = 0; s < sh.size(); s++) {
        unsigned amount = 1u << s;
        if (amount >= n) {
            Word zero = constWord(n, 0);
            cur = mkMuxW(sh[s], zero, cur);
            continue;
        }
        Word shifted(n);
        for (unsigned i = 0; i < n; i++)
            shifted[i] =
                (i + amount < n) ? cur[i + amount] : falseLit();
        cur = mkMuxW(sh[s], shifted, cur);
    }
    return cur;
}

Word
CnfBuilder::mkAshrW(const Word &a, const Word &sh)
{
    Word cur = a;
    unsigned n = static_cast<unsigned>(a.size());
    Lit sign_bit = a.empty() ? falseLit() : a.back();
    for (size_t s = 0; s < sh.size(); s++) {
        unsigned amount = 1u << s;
        Word shifted(n);
        for (unsigned i = 0; i < n; i++)
            shifted[i] =
                (i + amount < n) ? cur[i + amount] : sign_bit;
        cur = mkMuxW(sh[s], shifted, cur);
    }
    return cur;
}

Word
CnfBuilder::zextW(const Word &a, unsigned width, Lit false_lit)
{
    R2U_ASSERT(width >= a.size(), "zext shrinks");
    Word r = a;
    r.resize(width, false_lit);
    return r;
}

Word
CnfBuilder::sextW(const Word &a, unsigned width)
{
    R2U_ASSERT(width >= a.size() && !a.empty(), "sext shrinks");
    Word r = a;
    r.resize(width, a.back());
    return r;
}

Word
CnfBuilder::sliceW(const Word &a, unsigned lo, unsigned width)
{
    R2U_ASSERT(lo + width <= a.size(), "slice out of range");
    return Word(a.begin() + lo, a.begin() + lo + width);
}

Word
CnfBuilder::concatW(const Word &hi, const Word &lo)
{
    Word r = lo;
    r.insert(r.end(), hi.begin(), hi.end());
    return r;
}

Bits
CnfBuilder::modelWord(const Word &w) const
{
    Bits b(static_cast<unsigned>(w.size()));
    for (size_t i = 0; i < w.size(); i++) {
        Lit l = w[i];
        bool v;
        if (l == true_lit_)
            v = true;
        else if (l == ~true_lit_)
            v = false;
        else
            v = solver_.modelValue(l);
        b.setBit(static_cast<unsigned>(i), v);
    }
    return b;
}

} // namespace r2u::sat
