#include "sat/cnf.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u::sat
{

CnfBuilder::CnfBuilder(Solver &solver) : solver_(solver)
{
    true_lit_ = mkLit(solver_.newVar());
    solver_.addClause(true_lit_);
}

Lit
CnfBuilder::freshLit()
{
    return mkLit(solver_.newVar());
}

Lit
CnfBuilder::mkAnd(Lit a, Lit b)
{
    // Constant folding and trivial cases.
    if (isFalse(a) || isFalse(b))
        return falseLit();
    if (isTrue(a))
        return b;
    if (isTrue(b))
        return a;
    if (a == b)
        return a;
    if (a == ~b)
        return falseLit();

    if (b.x < a.x)
        std::swap(a, b);
    auto key = std::make_pair(a.x, b.x);
    auto it = and_cache_.find(key);
    if (it != and_cache_.end())
        return it->second;

    Lit y = freshLit();
    solver_.addClause(~y, a);
    solver_.addClause(~y, b);
    solver_.addClause(~a, ~b, y);
    and_cache_.emplace(key, y);
    return y;
}

Lit
CnfBuilder::mkXor(Lit a, Lit b)
{
    if (isFalse(a))
        return b;
    if (isFalse(b))
        return a;
    if (isTrue(a))
        return ~b;
    if (isTrue(b))
        return ~a;
    if (a == b)
        return falseLit();
    if (a == ~b)
        return trueLit();

    // Normalize: strip signs into a result inversion.
    bool invert = false;
    if (sign(a)) {
        a = ~a;
        invert = !invert;
    }
    if (sign(b)) {
        b = ~b;
        invert = !invert;
    }
    if (b.x < a.x)
        std::swap(a, b);
    auto key = std::make_pair(a.x, b.x);
    auto it = xor_cache_.find(key);
    Lit y;
    if (it != xor_cache_.end()) {
        y = it->second;
    } else {
        y = freshLit();
        solver_.addClause(~y, a, b);
        solver_.addClause({~y, ~a, ~b});
        solver_.addClause({y, ~a, b});
        solver_.addClause({y, a, ~b});
        xor_cache_.emplace(key, y);
    }
    return invert ? ~y : y;
}

Lit
CnfBuilder::mkMux(Lit sel, Lit t, Lit f)
{
    if (isTrue(sel))
        return t;
    if (isFalse(sel))
        return f;
    if (t == f)
        return t;
    // sel ? t : f  ==  (sel & t) | (~sel & f)
    return mkOr(mkAnd(sel, t), mkAnd(~sel, f));
}

Lit
CnfBuilder::mkAndN(const std::vector<Lit> &ls)
{
    Lit acc = trueLit();
    for (Lit l : ls)
        acc = mkAnd(acc, l);
    return acc;
}

Lit
CnfBuilder::mkOrN(const std::vector<Lit> &ls)
{
    Lit acc = falseLit();
    for (Lit l : ls)
        acc = mkOr(acc, l);
    return acc;
}

Word
CnfBuilder::constWord(const Bits &value)
{
    Word w(value.width());
    for (unsigned i = 0; i < value.width(); i++)
        w[i] = value.bit(i) ? trueLit() : falseLit();
    return w;
}

Word
CnfBuilder::constWord(unsigned width, uint64_t value)
{
    return constWord(Bits(width, value));
}

Word
CnfBuilder::freshWord(unsigned width)
{
    Word w(width);
    for (unsigned i = 0; i < width; i++)
        w[i] = freshLit();
    return w;
}

Word
CnfBuilder::mkAddW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "add width mismatch");
    Word sum(a.size());
    Lit carry = falseLit();
    for (size_t i = 0; i < a.size(); i++) {
        Lit axb = mkXor(a[i], b[i]);
        sum[i] = mkXor(axb, carry);
        carry = mkOr(mkAnd(a[i], b[i]), mkAnd(axb, carry));
    }
    return sum;
}

Word
CnfBuilder::mkNegW(const Word &a)
{
    Word inv = mkNotW(a);
    Word one = constWord(static_cast<unsigned>(a.size()), 1);
    return mkAddW(inv, one);
}

Word
CnfBuilder::mkSubW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "sub width mismatch");
    // a - b = a + ~b + 1
    Word sum(a.size());
    Lit carry = trueLit();
    for (size_t i = 0; i < a.size(); i++) {
        Lit nb = ~b[i];
        Lit axb = mkXor(a[i], nb);
        sum[i] = mkXor(axb, carry);
        carry = mkOr(mkAnd(a[i], nb), mkAnd(axb, carry));
    }
    return sum;
}

Word
CnfBuilder::mkAndW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "and width mismatch");
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = mkAnd(a[i], b[i]);
    return r;
}

Word
CnfBuilder::mkOrW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "or width mismatch");
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = mkOr(a[i], b[i]);
    return r;
}

Word
CnfBuilder::mkXorW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "xor width mismatch");
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = mkXor(a[i], b[i]);
    return r;
}

Word
CnfBuilder::mkNotW(const Word &a)
{
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = ~a[i];
    return r;
}

Word
CnfBuilder::mkMuxW(Lit sel, const Word &t, const Word &f)
{
    R2U_ASSERT(t.size() == f.size(), "mux width mismatch");
    Word r(t.size());
    for (size_t i = 0; i < t.size(); i++)
        r[i] = mkMux(sel, t[i], f[i]);
    return r;
}

Lit
CnfBuilder::mkEqW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "eq width mismatch");
    Lit acc = trueLit();
    for (size_t i = 0; i < a.size(); i++)
        acc = mkAnd(acc, mkEq(a[i], b[i]));
    return acc;
}

Lit
CnfBuilder::mkUltW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size(), "ult width mismatch");
    // Ripple from LSB: lt_i = (~a & b) | (a==b) & lt_{i-1}
    Lit lt = falseLit();
    for (size_t i = 0; i < a.size(); i++) {
        Lit here_lt = mkAnd(~a[i], b[i]);
        Lit here_eq = mkEq(a[i], b[i]);
        lt = mkOr(here_lt, mkAnd(here_eq, lt));
    }
    return lt;
}

Lit
CnfBuilder::mkSltW(const Word &a, const Word &b)
{
    R2U_ASSERT(a.size() == b.size() && !a.empty(), "slt width mismatch");
    Lit sa = a.back(), sb = b.back();
    Lit ult = mkUltW(a, b);
    // Different signs: a < b iff a negative. Same sign: unsigned compare.
    return mkMux(mkXor(sa, sb), sa, ult);
}

Lit
CnfBuilder::mkRedOrW(const Word &a)
{
    Lit acc = falseLit();
    for (Lit l : a)
        acc = mkOr(acc, l);
    return acc;
}

Lit
CnfBuilder::mkRedAndW(const Word &a)
{
    Lit acc = trueLit();
    for (Lit l : a)
        acc = mkAnd(acc, l);
    return acc;
}

Word
CnfBuilder::mkShlW(const Word &a, const Word &sh)
{
    Word cur = a;
    unsigned n = static_cast<unsigned>(a.size());
    for (size_t s = 0; s < sh.size(); s++) {
        unsigned amount = 1u << s;
        if (amount >= n) {
            // Shifting by >= width zeroes the word if this bit is set.
            Word zero = constWord(n, 0);
            cur = mkMuxW(sh[s], zero, cur);
            continue;
        }
        Word shifted(n);
        for (unsigned i = 0; i < n; i++)
            shifted[i] = (i >= amount) ? cur[i - amount] : falseLit();
        cur = mkMuxW(sh[s], shifted, cur);
    }
    return cur;
}

Word
CnfBuilder::mkLshrW(const Word &a, const Word &sh)
{
    Word cur = a;
    unsigned n = static_cast<unsigned>(a.size());
    for (size_t s = 0; s < sh.size(); s++) {
        unsigned amount = 1u << s;
        if (amount >= n) {
            Word zero = constWord(n, 0);
            cur = mkMuxW(sh[s], zero, cur);
            continue;
        }
        Word shifted(n);
        for (unsigned i = 0; i < n; i++)
            shifted[i] =
                (i + amount < n) ? cur[i + amount] : falseLit();
        cur = mkMuxW(sh[s], shifted, cur);
    }
    return cur;
}

Word
CnfBuilder::mkAshrW(const Word &a, const Word &sh)
{
    Word cur = a;
    unsigned n = static_cast<unsigned>(a.size());
    Lit sign_bit = a.empty() ? falseLit() : a.back();
    for (size_t s = 0; s < sh.size(); s++) {
        unsigned amount = 1u << s;
        Word shifted(n);
        for (unsigned i = 0; i < n; i++)
            shifted[i] =
                (i + amount < n) ? cur[i + amount] : sign_bit;
        cur = mkMuxW(sh[s], shifted, cur);
    }
    return cur;
}

Word
CnfBuilder::zextW(const Word &a, unsigned width, Lit false_lit)
{
    R2U_ASSERT(width >= a.size(), "zext shrinks");
    Word r = a;
    r.resize(width, false_lit);
    return r;
}

Word
CnfBuilder::sextW(const Word &a, unsigned width)
{
    R2U_ASSERT(width >= a.size() && !a.empty(), "sext shrinks");
    Word r = a;
    r.resize(width, a.back());
    return r;
}

Word
CnfBuilder::sliceW(const Word &a, unsigned lo, unsigned width)
{
    R2U_ASSERT(lo + width <= a.size(), "slice out of range");
    return Word(a.begin() + lo, a.begin() + lo + width);
}

Word
CnfBuilder::concatW(const Word &hi, const Word &lo)
{
    Word r = lo;
    r.insert(r.end(), hi.begin(), hi.end());
    return r;
}

Bits
CnfBuilder::modelWord(const Word &w) const
{
    Bits b(static_cast<unsigned>(w.size()));
    for (size_t i = 0; i < w.size(); i++) {
        Lit l = w[i];
        bool v;
        if (l == true_lit_)
            v = true;
        else if (l == ~true_lit_)
            v = false;
        else
            v = solver_.modelValue(l);
        b.setBit(static_cast<unsigned>(i), v);
    }
    return b;
}

} // namespace r2u::sat
