/**
 * @file
 * Litmus tests: small concurrent programs encoding MCM ordering
 * constraints (paper §2). A test is a set of straight-line threads of
 * word-granular reads/writes plus an "interesting" outcome condition —
 * conventionally the weak (non-SC) outcome the test probes.
 *
 * The module provides a text format, a diy-style generator that
 * synthesizes tests from critical-cycle specifications (Rfe/Fre/Wse/
 * Pod** relation sequences, after Alglave et al.), and the canned
 * 56-test suite used by the paper's evaluation (hand-written x86-TSO
 * classics plus generated safe tests).
 */

#ifndef R2U_LITMUS_LITMUS_HH
#define R2U_LITMUS_LITMUS_HH

#include <string>
#include <vector>

namespace r2u::litmus
{

/** One memory access in a thread. */
struct Access
{
    bool isWrite = false;
    std::string loc; ///< symbolic location ("x", "y", ...)
    int value = 0;   ///< writes: value stored
    int reg = 0;     ///< reads: destination register number (per thread)
};

struct Thread
{
    std::vector<Access> ops;
};

/** One conjunct of an outcome condition: thread:reg == value. */
struct RegCond
{
    int thread = 0;
    int reg = 0;
    int value = 0;
};

/** Final-memory conjunct: loc == value. */
struct MemCond
{
    std::string loc;
    int value = 0;
};

struct Condition
{
    std::vector<RegCond> regs;
    std::vector<MemCond> mem;

    bool empty() const { return regs.empty() && mem.empty(); }
};

struct Test
{
    std::string name;
    std::vector<Thread> threads;
    /** The probed (usually SC-forbidden) outcome. */
    Condition interesting;

    /** Distinct locations in order of first appearance. */
    std::vector<std::string> locations() const;

    /** Registers read into, per thread. */
    std::vector<std::vector<int>> readRegs() const;

    std::string print() const;
    static Test parse(const std::string &text);

    /** RISC-V assembly for one thread (locations at 0,4,8,...). */
    std::string threadAssembly(size_t thread) const;
};

/**
 * diy-style generation: build a test from a critical-cycle relation
 * string, e.g. "Rfe PodRR Fre PodWW" (MP) or "Fre PodWR Fre PodWR"
 * (SB). Supported relations: Rfe, Fre, Wse (external rf/from-read/
 * write-serialization, switching threads) and PodWW/PodWR/PodRW/PodRR
 * (program order within a thread). The interesting outcome is the one
 * requiring the cycle, which SC forbids.
 */
Test generateFromCycle(const std::string &name,
                       const std::string &cycle);

/** The 56-test evaluation suite (paper §5.2). */
std::vector<Test> standardSuite();

} // namespace r2u::litmus

#endif // R2U_LITMUS_LITMUS_HH
