#include "litmus/litmus.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::litmus
{

std::vector<std::string>
Test::locations() const
{
    std::vector<std::string> locs;
    for (const Thread &t : threads) {
        for (const Access &a : t.ops) {
            if (std::find(locs.begin(), locs.end(), a.loc) == locs.end())
                locs.push_back(a.loc);
        }
    }
    // Locations named in final-memory conditions count too.
    for (const MemCond &mc : interesting.mem) {
        if (std::find(locs.begin(), locs.end(), mc.loc) == locs.end())
            locs.push_back(mc.loc);
    }
    return locs;
}

std::vector<std::vector<int>>
Test::readRegs() const
{
    std::vector<std::vector<int>> out(threads.size());
    for (size_t t = 0; t < threads.size(); t++)
        for (const Access &a : threads[t].ops)
            if (!a.isWrite)
                out[t].push_back(a.reg);
    return out;
}

std::string
Test::print() const
{
    std::string out = "name " + name + "\n";
    for (size_t t = 0; t < threads.size(); t++) {
        out += strfmt("thread %zu\n", t);
        for (const Access &a : threads[t].ops) {
            if (a.isWrite)
                out += strfmt("w %s %d\n", a.loc.c_str(), a.value);
            else
                out += strfmt("r %s %d\n", a.loc.c_str(), a.reg);
        }
    }
    out += "interesting ";
    bool first = true;
    for (const RegCond &rc : interesting.regs) {
        if (!first)
            out += " & ";
        out += strfmt("%d:x%d=%d", rc.thread, rc.reg, rc.value);
        first = false;
    }
    for (const MemCond &mc : interesting.mem) {
        if (!first)
            out += " & ";
        out += strfmt("%s=%d", mc.loc.c_str(), mc.value);
        first = false;
    }
    out += "\n";
    return out;
}

Test
Test::parse(const std::string &text)
{
    Test test;
    for (const std::string &raw : split(text, '\n')) {
        std::string line = raw;
        size_t c = line.find('#');
        if (c != std::string::npos)
            line = line.substr(0, c);
        line = trim(line);
        if (line.empty())
            continue;
        auto toks = splitWs(line);
        if (toks[0] == "name") {
            if (toks.size() != 2)
                fatal("litmus: bad name line '%s'", line.c_str());
            test.name = toks[1];
        } else if (toks[0] == "thread") {
            if (toks.size() != 2)
                fatal("litmus: bad thread line '%s'", line.c_str());
            size_t idx = std::stoul(toks[1]);
            if (idx != test.threads.size())
                fatal("litmus: threads must be declared in order");
            test.threads.emplace_back();
        } else if (toks[0] == "w" || toks[0] == "r") {
            if (test.threads.empty() || toks.size() != 3)
                fatal("litmus: bad access line '%s'", line.c_str());
            Access a;
            a.isWrite = toks[0] == "w";
            a.loc = toks[1];
            int v = std::stoi(toks[2]);
            if (a.isWrite)
                a.value = v;
            else
                a.reg = v;
            test.threads.back().ops.push_back(a);
        } else if (toks[0] == "interesting") {
            std::string rest = trim(line.substr(toks[0].size()));
            for (std::string part : split(rest, '&')) {
                part = trim(part);
                if (part.empty())
                    continue;
                size_t colon = part.find(':');
                size_t eq = part.find('=');
                if (eq == std::string::npos)
                    fatal("litmus: bad condition '%s'", part.c_str());
                if (colon != std::string::npos && colon < eq) {
                    RegCond rc;
                    rc.thread = std::stoi(part.substr(0, colon));
                    std::string reg =
                        trim(part.substr(colon + 1, eq - colon - 1));
                    if (reg.empty() || reg[0] != 'x')
                        fatal("litmus: bad register '%s'", reg.c_str());
                    rc.reg = std::stoi(reg.substr(1));
                    rc.value = std::stoi(part.substr(eq + 1));
                    test.interesting.regs.push_back(rc);
                } else {
                    MemCond mc;
                    mc.loc = trim(part.substr(0, eq));
                    mc.value = std::stoi(part.substr(eq + 1));
                    test.interesting.mem.push_back(mc);
                }
            }
        } else {
            fatal("litmus: unexpected line '%s'", line.c_str());
        }
    }
    if (test.name.empty() || test.threads.empty())
        fatal("litmus: test needs a name and at least one thread");
    return test;
}

std::string
Test::threadAssembly(size_t thread) const
{
    R2U_ASSERT(thread < threads.size(), "bad thread index");
    auto locs = locations();
    auto addr_of = [&](const std::string &loc) {
        for (size_t i = 0; i < locs.size(); i++)
            if (locs[i] == loc)
                return static_cast<int>(4 * i);
        panic("unknown location");
    };
    std::string out;
    for (const Access &a : threads[thread].ops) {
        if (a.isWrite) {
            out += strfmt("addi x1, x0, %d\n", a.value);
            out += strfmt("sw x1, %d(x0)\n", addr_of(a.loc));
        } else {
            out += strfmt("lw x%d, %d(x0)\n", a.reg, addr_of(a.loc));
        }
    }
    return out;
}

// ----------------------------------------------------------------------
// diy-style generation from critical cycles.
// ----------------------------------------------------------------------

namespace
{

struct CycleEvent
{
    int thread = 0;
    int loc = 0;
    bool isWrite = false;
    int value = 0; ///< for writes
    int reg = 0;   ///< for reads
};

} // namespace

Test
generateFromCycle(const std::string &name, const std::string &cycle)
{
    auto rels = splitWs(cycle);
    if (rels.empty())
        fatal("empty cycle specification");

    struct Rel
    {
        std::string text;
        char from, to;
        bool external;
    };
    auto parseRel = [&](const std::string &r) -> Rel {
        if (r == "Rfe")
            return {r, 'W', 'R', true};
        if (r == "Fre")
            return {r, 'R', 'W', true};
        if (r == "Wse")
            return {r, 'W', 'W', true};
        if (startsWith(r, "Pod") && r.size() == 5)
            return {r, r[3], r[4], false};
        fatal("unknown cycle relation '%s'", r.c_str());
    };
    std::vector<Rel> parsed;
    for (const auto &r : rels)
        parsed.push_back(parseRel(r));
    size_t n = parsed.size();

    // Rotate so the last relation is external: then event 0 starts
    // thread 0 and every thread's events are contiguous in cycle
    // order (program order == cycle order within a thread).
    size_t last_ext = n;
    for (size_t i = 0; i < n; i++)
        if (parsed[i].external)
            last_ext = i;
    if (last_ext == n)
        fatal("cycle '%s' has no external relation", cycle.c_str());
    std::rotate(parsed.begin(), parsed.begin() + (last_ext + 1) % n,
                parsed.end());

    for (size_t i = 0; i < n; i++) {
        if (parsed[i].to != parsed[(i + 1) % n].from)
            fatal("cycle '%s': relation %zu type mismatch",
                  cycle.c_str(), i);
    }

    size_t npods = 0, nexts = 0;
    for (const auto &r : parsed)
        (r.external ? nexts : npods)++;
    if (npods == 0)
        fatal("cycle '%s' has no program-order relation", cycle.c_str());

    // Build events. Event i is the source of relation i; program
    // order edges advance the location (mod #pods), external edges
    // advance the thread.
    std::vector<CycleEvent> events(n);
    int thread = 0, loc = 0;
    for (size_t i = 0; i < n; i++) {
        events[i].thread = thread;
        events[i].loc = loc;
        events[i].isWrite = parsed[i].from == 'W';
        if (parsed[i].external)
            thread++;
        else
            loc = static_cast<int>((loc + 1) % npods);
    }
    int nthreads = thread; // last relation is external and wraps to 0

    // Coherence-order writes per location: Wse edges constrain the
    // source co-before the target; unrelated writes keep cycle order.
    // Assign values 1, 2, ... in coherence order.
    std::map<int, std::vector<size_t>> writes_of; // loc -> event idx
    for (size_t i = 0; i < n; i++)
        if (events[i].isWrite)
            writes_of[events[i].loc].push_back(i);
    for (auto &[l, ws] : writes_of) {
        // Stable ordering: repeatedly pick a write with no unassigned
        // Wse predecessor.
        std::vector<size_t> order;
        std::set<size_t> remaining(ws.begin(), ws.end());
        while (!remaining.empty()) {
            size_t picked = *remaining.begin();
            for (size_t cand : remaining) {
                bool has_pred = false;
                for (size_t i = 0; i < n; i++) {
                    size_t to = (i + 1) % n;
                    if (parsed[i].text == "Wse" && to == cand &&
                        remaining.count(i))
                        has_pred = true;
                }
                if (!has_pred) {
                    picked = cand;
                    break;
                }
            }
            order.push_back(picked);
            remaining.erase(picked);
        }
        int v = 0;
        for (size_t idx : order)
            events[idx].value = ++v;
    }

    // Read values: an Rfe edge makes its target read the source
    // write's value; an Fre edge makes its source read the coherence
    // predecessor of the target write.
    std::vector<int> read_value(n, 0);
    for (size_t i = 0; i < n; i++) {
        size_t to = (i + 1) % n;
        if (parsed[i].text == "Rfe")
            read_value[to] = events[i].value;
        else if (parsed[i].text == "Fre")
            read_value[i] = events[to].value - 1;
    }

    std::vector<std::string> loc_names;
    for (size_t l = 0; l < npods; l++) {
        if (l == 0)
            loc_names.push_back("x");
        else if (l == 1)
            loc_names.push_back("y");
        else if (l == 2)
            loc_names.push_back("z");
        else
            loc_names.push_back("a" + std::to_string(l));
    }

    Test test;
    test.name = name;
    test.threads.resize(static_cast<size_t>(nthreads));
    std::vector<int> next_reg(static_cast<size_t>(nthreads), 2);
    for (size_t i = 0; i < n; i++) {
        CycleEvent &e = events[i];
        Access a;
        a.isWrite = e.isWrite;
        a.loc = loc_names[static_cast<size_t>(e.loc)];
        if (e.isWrite) {
            a.value = e.value;
        } else {
            a.reg = next_reg[static_cast<size_t>(e.thread)]++;
            RegCond rc;
            rc.thread = e.thread;
            rc.reg = a.reg;
            rc.value = read_value[i];
            test.interesting.regs.push_back(rc);
        }
        test.threads[static_cast<size_t>(e.thread)].ops.push_back(a);
    }

    // Locations with multiple writes need a final-value condition to
    // pin the coherence order the cycle asserts.
    for (const auto &[l, ws] : writes_of) {
        if (ws.size() < 2)
            continue;
        MemCond mc;
        mc.loc = loc_names[static_cast<size_t>(l)];
        mc.value = 0;
        for (size_t idx : ws)
            mc.value = std::max(mc.value, events[idx].value);
        test.interesting.mem.push_back(mc);
    }
    return test;
}

// ----------------------------------------------------------------------
// The 56-test suite.
// ----------------------------------------------------------------------

std::vector<Test>
standardSuite()
{
    std::vector<Test> suite;
    auto hand = [&](const char *text) {
        suite.push_back(Test::parse(text));
    };

    // --- hand-written classics (x86-TSO-suite flavor) ---
    hand(R"(name mp
thread 0
w x 1
w y 1
thread 1
r y 2
r x 3
interesting 1:x2=1 & 1:x3=0)");

    hand(R"(name sb
thread 0
w x 1
r y 2
thread 1
w y 1
r x 2
interesting 0:x2=0 & 1:x2=0)");

    hand(R"(name lb
thread 0
r x 2
w y 1
thread 1
r y 2
w x 1
interesting 0:x2=1 & 1:x2=1)");

    hand(R"(name wrc
thread 0
w x 1
thread 1
r x 2
w y 1
thread 2
r y 2
r x 3
interesting 1:x2=1 & 2:x2=1 & 2:x3=0)");

    hand(R"(name rwc
thread 0
w x 1
thread 1
r x 2
r y 3
thread 2
w y 1
r x 2
interesting 1:x2=1 & 1:x3=0 & 2:x2=0)");

    hand(R"(name iriw
thread 0
w x 1
thread 1
w y 1
thread 2
r x 2
r y 3
thread 3
r y 2
r x 3
interesting 2:x2=1 & 2:x3=0 & 3:x2=1 & 3:x3=0)");

    hand(R"(name corr
thread 0
w x 1
thread 1
r x 2
r x 3
interesting 1:x2=1 & 1:x3=0)");

    hand(R"(name coww
thread 0
w x 1
w x 2
interesting x=1)");

    hand(R"(name cowr
thread 0
w x 1
r x 2
thread 1
w x 2
interesting 0:x2=2 & x=1)");

    hand(R"(name corw
thread 0
r x 2
w x 1
interesting 0:x2=1)");

    hand(R"(name 2+2w
thread 0
w x 1
w y 2
thread 1
w y 1
w x 2
interesting x=1 & y=1)");

    hand(R"(name s
thread 0
w x 2
w y 1
thread 1
r y 2
w x 1
interesting 1:x2=1 & x=2)");

    hand(R"(name r
thread 0
w x 1
w y 1
thread 1
w y 2
r x 2
interesting 1:x2=0 & y=2)");

    hand(R"(name ssl
thread 0
w x 1
r x 2
r y 3
thread 1
w y 1
r y 2
r x 3
interesting 0:x2=1 & 0:x3=0 & 1:x2=1 & 1:x3=0)");

    hand(R"(name wrw+2w
thread 0
w x 1
r y 2
thread 1
w y 1
w x 2
interesting 0:x2=0 & x=1)");

    hand(R"(name wrr+2r
thread 0
w x 1
r y 2
thread 1
w y 1
thread 2
r y 2
r x 3
interesting 0:x2=0 & 2:x2=1 & 2:x3=0)");

    hand(R"(name mp3
thread 0
w x 1
w y 1
thread 1
r y 2
w z 1
thread 2
r z 2
r x 3
interesting 1:x2=1 & 2:x2=1 & 2:x3=0)");

    hand(R"(name sb3
thread 0
w x 1
r y 2
thread 1
w y 1
r z 2
thread 2
w z 1
r x 2
interesting 0:x2=0 & 1:x2=0 & 2:x2=0)");

    hand(R"(name lb3
thread 0
r x 2
w y 1
thread 1
r y 2
w z 1
thread 2
r z 2
w x 1
interesting 0:x2=1 & 1:x2=1 & 2:x2=1)");

    hand(R"(name co2w
thread 0
w x 1
thread 1
w x 2
r x 3
interesting 1:x3=1 & x=2)");

    // --- generated safe tests from critical-cycle enumeration ---
    const char *exts[] = {"Rfe", "Fre", "Wse"};
    auto to_type = [](const std::string &r) {
        return r == "Fre" ? 'W' : (r == "Rfe" ? 'R' : 'W');
    };
    auto from_type = [](const std::string &r) {
        return r == "Fre" ? 'R' : 'W';
    };
    int id = 0;
    // Two-thread cycles: ext pod ext pod.
    for (const char *e1 : exts) {
        for (const char *e2 : exts) {
            std::string pod1 = std::string("Pod") + to_type(e1) +
                               from_type(e2);
            std::string pod2 = std::string("Pod") + to_type(e2) +
                               from_type(e1);
            std::string cyc = std::string(e1) + " " + pod1 + " " + e2 +
                              " " + pod2;
            suite.push_back(generateFromCycle(
                strfmt("safe%03d", id++), cyc));
        }
    }
    // Three-thread cycles: (ext pod) x3.
    for (const char *e1 : exts) {
        for (const char *e2 : exts) {
            for (const char *e3 : exts) {
                std::string pod1 = std::string("Pod") + to_type(e1) +
                                   from_type(e2);
                std::string pod2 = std::string("Pod") + to_type(e2) +
                                   from_type(e3);
                std::string pod3 = std::string("Pod") + to_type(e3) +
                                   from_type(e1);
                std::string cyc = std::string(e1) + " " + pod1 + " " +
                                  std::string(e2) + " " + pod2 + " " +
                                  std::string(e3) + " " + pod3;
                suite.push_back(generateFromCycle(
                    strfmt("safe%03d", id++), cyc));
            }
        }
    }

    R2U_ASSERT(suite.size() == 56, "suite has %zu tests, expected 56",
               suite.size());
    return suite;
}

} // namespace r2u::litmus
