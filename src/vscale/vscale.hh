/**
 * @file
 * Support library for the multi-V-scale case-study design: elaboration
 * configuration, hierarchical signal-name helpers, and a simulation
 * harness that loads programs and inspects architectural state.
 */

#ifndef R2U_VSCALE_VSCALE_HH
#define R2U_VSCALE_VSCALE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "verilog/elaborate.hh"

namespace r2u::vscale
{

/** Elaboration-time configuration of the multi-V-scale. */
struct Config
{
    unsigned xlen = 32;
    unsigned nregs = 32;
    unsigned imemWords = 32;
    unsigned dmemWords = 8;
    bool buggy = false;

    unsigned regBits() const;
    unsigned imemAbits() const;
    unsigned pcBits() const { return imemAbits() + 2; }
    unsigned dmemAbits() const;

    /** Full-width configuration (RTL correctness testing). */
    static Config full() { return Config{}; }

    /**
     * Narrow configuration for formal runs: 8-bit datapath, 8
     * registers. Litmus-visible behavior is identical; CNF sizes are
     * laptop-scale.
     */
    static
    Config
    formal()
    {
        Config c;
        c.xlen = 8;
        c.nregs = 8;
        return c;
    }
};

/** Paths of the multi-V-scale Verilog sources. */
std::vector<std::string> designFiles();

/** Parse + elaborate the multi-V-scale with the given configuration. */
vlog::ElabResult elaborateVscale(const Config &config);

/** Hierarchical name of a per-core signal, e.g. coreSig(0, "inst_DX"). */
std::string coreSig(unsigned core, const std::string &name);

constexpr unsigned kNumCores = 4;

/**
 * Simulation harness: owns the elaborated design and a Simulator, and
 * provides program loading and architectural-state inspection.
 */
class Harness
{
  public:
    explicit Harness(const Config &config);

    const Config &config() const { return config_; }
    const vlog::ElabResult &design() const { return design_; }
    sim::Simulator &sim() { return *sim_; }

    /**
     * Load a program into core @p core's instruction memory. A
     * spin-in-place "jal x0, 0" is appended and the remainder is
     * NOP-filled so the PC never wraps back into the program.
     */
    void loadProgram(unsigned core, const std::vector<uint32_t> &words);

    /** Assemble-and-load convenience. */
    void loadProgram(unsigned core, const std::string &assembly);

    /** Apply reset for two cycles, then run @p cycles clock edges. */
    void resetAndRun(unsigned cycles);

    /** Run additional cycles without reset. */
    void run(unsigned cycles);

    uint32_t reg(unsigned core, unsigned index) const;
    uint32_t dataWord(unsigned wordIndex) const;
    void setDataWord(unsigned wordIndex, uint32_t value);

    /** True if core @p core is parked on the spin jal (test finished). */
    bool coreSpinning(unsigned core);

  private:
    Config config_;
    vlog::ElabResult design_;
    std::unique_ptr<sim::Simulator> sim_;
    nl::MemId dmem_;
    uint32_t spin_addr_[kNumCores] = {};
    nl::MemId imem_[kNumCores];
    nl::MemId regfile_[kNumCores];
};

} // namespace r2u::vscale

#endif // R2U_VSCALE_VSCALE_HH
