/**
 * @file
 * rtl2uspec design metadata for the multi-V-scale (paper §4.2.1 and
 * §4.3.4, and the artifact's design.h): IFR / PCR / IM_PC names per
 * core, lw/sw encodings, and the shared data memory's request-response
 * interface signals.
 */

#ifndef R2U_VSCALE_METADATA_HH
#define R2U_VSCALE_METADATA_HH

#include "rtl2uspec/metadata.hh"
#include "vscale/vscale.hh"

namespace r2u::vscale
{

/** Metadata for a multi-V-scale elaborated with the given config. */
rtl2uspec::DesignMetadata vscaleMetadata(const Config &config);

} // namespace r2u::vscale

#endif // R2U_VSCALE_METADATA_HH
