#include "vscale/metadata.hh"

namespace r2u::vscale
{

rtl2uspec::DesignMetadata
vscaleMetadata(const Config &config)
{
    (void)config;
    rtl2uspec::DesignMetadata md;

    for (unsigned c = 0; c < kNumCores; c++) {
        rtl2uspec::CoreMeta core;
        core.prefix = "core_" + std::to_string(c) + ".";
        core.ifr = coreSig(c, "inst_DX");
        core.pcrs = {coreSig(c, "PC_DX"), coreSig(c, "PC_WB")};
        core.imPc = coreSig(c, "PC_IF");
        core.reqEn = coreSig(c, "dmem_en");
        core.reqWen = coreSig(c, "dmem_wen");
        md.cores.push_back(std::move(core));
    }

    // sw first (instruction id 0, as in the artifact), then lw. RISC-V
    // encodings: opcode + funct3 identify the instruction.
    rtl2uspec::InstrType sw;
    sw.name = "sw";
    sw.mask = 0x0000707f;
    sw.match = 0x00002023;
    sw.isWrite = true;
    md.instrs.push_back(sw);

    rtl2uspec::InstrType lw;
    lw.name = "lw";
    lw.mask = 0x0000707f;
    lw.match = 0x00002003;
    lw.isRead = true;
    md.instrs.push_back(lw);

    rtl2uspec::RemoteInterface &remote = md.remote;
    remote.memName = "dmem.mem";
    remote.reqValid = "mem_req_valid";
    remote.reqWen = "mem_req_wen";
    remote.reqAddr = "mem_req_addr";
    remote.reqData = "mem_req_wdata";
    remote.reqCore = "mem_req_core";
    remote.grant = "grant";
    remote.respValid = "resp_valid";
    remote.respCore = "resp_core";
    remote.respData = "resp_data";
    remote.pipelineRegs = {"dmem.req_valid_q", "dmem.req_wen_q",
                           "dmem.req_addr_q", "dmem.req_wdata_q",
                           "dmem.req_core_q"};
    remote.pipeValid = "dmem.req_valid_q";
    remote.pipeWen = "dmem.req_wen_q";
    remote.pipeCore = "dmem.req_core_q";

    // Round-robin bookkeeping: arbitration state, not program state.
    md.exclude = {"arbiter.rr_ptr"};

    md.bound = 14;
    md.issueByFrame = 5;
    return md;
}

} // namespace r2u::vscale
