#include "vscale/vscale.hh"

#include "common/logging.hh"
#include "isa/isa.hh"

namespace r2u::vscale
{

namespace
{

unsigned
log2ceil(unsigned n)
{
    unsigned b = 0;
    while ((1u << b) < n)
        b++;
    return b == 0 ? 1 : b;
}

} // namespace

unsigned
Config::regBits() const
{
    return log2ceil(nregs);
}

unsigned
Config::imemAbits() const
{
    return log2ceil(imemWords);
}

unsigned
Config::dmemAbits() const
{
    return log2ceil(dmemWords);
}

std::vector<std::string>
designFiles()
{
    std::string dir = R2U_DESIGN_DIR;
    return {
        dir + "/vscale_core.v",
        dir + "/vscale_arbiter.v",
        dir + "/vscale_mem.v",
        dir + "/multi_vscale.v",
    };
}

vlog::ElabResult
elaborateVscale(const Config &config)
{
    vlog::ElabOptions opts;
    opts.top = "multi_vscale";
    opts.params["XLEN"] = config.xlen;
    opts.params["PC_BITS"] = config.pcBits();
    opts.params["NREGS"] = config.nregs;
    opts.params["REG_BITS"] = config.regBits();
    opts.params["DMEM_WORDS"] = config.dmemWords;
    opts.params["DMEM_ABITS"] = config.dmemAbits();
    opts.params["IMEM_WORDS"] = config.imemWords;
    opts.params["IMEM_ABITS"] = config.imemAbits();
    opts.params["BUGGY"] = config.buggy ? 1 : 0;
    return vlog::elaborateFiles(designFiles(), opts);
}

std::string
coreSig(unsigned core, const std::string &name)
{
    R2U_ASSERT(core < kNumCores, "core index %u out of range", core);
    return "core_" + std::to_string(core) + "." + name;
}

Harness::Harness(const Config &config)
    : config_(config), design_(elaborateVscale(config))
{
    sim_ = std::make_unique<sim::Simulator>(*design_.netlist);
    dmem_ = design_.mem("dmem.mem");
    for (unsigned c = 0; c < kNumCores; c++) {
        imem_[c] = design_.mem("imem_" + std::to_string(c) + ".mem");
        regfile_[c] = design_.mem(coreSig(c, "regfile"));
    }
}

void
Harness::loadProgram(unsigned core, const std::vector<uint32_t> &words)
{
    R2U_ASSERT(core < kNumCores, "core index out of range");
    if (words.size() + 1 > config_.imemWords)
        fatal("program of %zu words does not fit in imem of %u words",
              words.size(), config_.imemWords);
    spin_addr_[core] = static_cast<uint32_t>(4 * words.size());
    isa::Inst spin;
    spin.op = isa::Op::Jal;
    spin.rd = 0;
    spin.imm = 0;
    for (unsigned i = 0; i < config_.imemWords; i++) {
        uint32_t w;
        if (i < words.size())
            w = words[i];
        else if (i == words.size())
            w = isa::encode(spin);
        else
            w = isa::nopWord();
        sim_->pokeMem(imem_[core], i, Bits(32, w));
    }
}

void
Harness::loadProgram(unsigned core, const std::string &assembly)
{
    loadProgram(core, isa::assemble(assembly));
}

void
Harness::resetAndRun(unsigned cycles)
{
    sim_->setInput("reset", Bits(1, 1));
    sim_->setInput("clk", Bits(1, 0));
    sim_->step();
    sim_->step();
    sim_->setInput("reset", Bits(1, 0));
    run(cycles);
}

void
Harness::run(unsigned cycles)
{
    sim_->run(cycles);
}

uint32_t
Harness::reg(unsigned core, unsigned index) const
{
    R2U_ASSERT(core < kNumCores && index < config_.nregs,
               "bad reg access core %u x%u", core, index);
    return static_cast<uint32_t>(
        sim_->memWord(regfile_[core], index).toUint64());
}

uint32_t
Harness::dataWord(unsigned wordIndex) const
{
    return static_cast<uint32_t>(
        sim_->memWord(dmem_, wordIndex).toUint64());
}

void
Harness::setDataWord(unsigned wordIndex, uint32_t value)
{
    sim_->pokeMem(dmem_, wordIndex, Bits(config_.xlen, value));
}

bool
Harness::coreSpinning(unsigned core)
{
    // The spin jal sits right after the program at byte address A; a
    // parked core's fetch PC oscillates between A and A+4 forever.
    uint32_t a = spin_addr_[core];
    uint32_t pc = static_cast<uint32_t>(
        sim_->value(coreSig(core, "PC_IF")).toUint64());
    return pc == a || pc == a + 4;
}

} // namespace r2u::vscale
