#include "common/bits.hh"

#include <algorithm>

#include "common/logging.hh"

namespace r2u
{

Bits::Bits(unsigned width) : width_(width), words_(wordsFor(width), 0)
{
}

Bits::Bits(unsigned width, uint64_t value)
    : width_(width), words_(wordsFor(width), 0)
{
    if (!words_.empty())
        words_[0] = value;
    normalize();
}

Bits
Bits::ones(unsigned width)
{
    Bits b(width);
    for (auto &w : b.words_)
        w = ~0ull;
    b.normalize();
    return b;
}

Bits
Bits::fromBinString(const std::string &s)
{
    Bits b(static_cast<unsigned>(s.size()));
    for (size_t i = 0; i < s.size(); i++) {
        char c = s[s.size() - 1 - i];
        R2U_ASSERT(c == '0' || c == '1', "bad binary digit '%c'", c);
        if (c == '1')
            b.setBit(static_cast<unsigned>(i), true);
    }
    return b;
}

void
Bits::normalize()
{
    if (width_ == 0)
        return;
    unsigned rem = width_ % 64;
    if (rem != 0)
        words_.back() &= (~0ull >> (64 - rem));
}

bool
Bits::bit(unsigned i) const
{
    R2U_ASSERT(i < width_, "bit index %u out of range (width %u)", i,
               width_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

void
Bits::setBit(unsigned i, bool v)
{
    R2U_ASSERT(i < width_, "bit index %u out of range (width %u)", i,
               width_);
    uint64_t mask = 1ull << (i % 64);
    if (v)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

uint64_t
Bits::toUint64() const
{
    return words_.empty() ? 0 : words_[0];
}

int64_t
Bits::toInt64() const
{
    if (width_ == 0)
        return 0;
    uint64_t v = toUint64();
    if (width_ >= 64)
        return static_cast<int64_t>(v);
    // Sign-extend from bit width_-1.
    if (bit(width_ - 1))
        v |= ~0ull << width_;
    return static_cast<int64_t>(v);
}

bool
Bits::isZero() const
{
    for (uint64_t w : words_)
        if (w != 0)
            return false;
    return true;
}

bool
Bits::isAllOnes() const
{
    return *this == ones(width_);
}

Bits
Bits::operator+(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_, "width mismatch %u vs %u", width_,
               o.width_);
    Bits r(width_);
    uint64_t carry = 0;
    for (size_t i = 0; i < words_.size(); i++) {
        uint64_t a = words_[i], b = o.words_[i];
        uint64_t s = a + b;
        uint64_t c1 = s < a;
        uint64_t s2 = s + carry;
        uint64_t c2 = s2 < s;
        r.words_[i] = s2;
        carry = c1 | c2;
    }
    r.normalize();
    return r;
}

Bits
Bits::operator-(const Bits &o) const
{
    return *this + (~o + Bits(width_, 1));
}

Bits
Bits::operator*(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_, "width mismatch %u vs %u", width_,
               o.width_);
    // Schoolbook multiply on 32-bit limbs; result truncated to width.
    Bits r(width_);
    unsigned nw = static_cast<unsigned>(words_.size());
    std::vector<uint32_t> a(nw * 2), b(nw * 2), acc(nw * 2 + 2, 0);
    for (unsigned i = 0; i < nw; i++) {
        a[2 * i] = static_cast<uint32_t>(words_[i]);
        a[2 * i + 1] = static_cast<uint32_t>(words_[i] >> 32);
        b[2 * i] = static_cast<uint32_t>(o.words_[i]);
        b[2 * i + 1] = static_cast<uint32_t>(o.words_[i] >> 32);
    }
    for (unsigned i = 0; i < nw * 2; i++) {
        uint64_t carry = 0;
        for (unsigned j = 0; j + i < nw * 2; j++) {
            uint64_t cur = acc[i + j] +
                           static_cast<uint64_t>(a[i]) * b[j] + carry;
            acc[i + j] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
    }
    for (unsigned i = 0; i < nw; i++) {
        r.words_[i] = static_cast<uint64_t>(acc[2 * i]) |
                      (static_cast<uint64_t>(acc[2 * i + 1]) << 32);
    }
    r.normalize();
    return r;
}

Bits
Bits::operator&(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_, "width mismatch %u vs %u", width_,
               o.width_);
    Bits r(width_);
    for (size_t i = 0; i < words_.size(); i++)
        r.words_[i] = words_[i] & o.words_[i];
    return r;
}

Bits
Bits::operator|(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_, "width mismatch %u vs %u", width_,
               o.width_);
    Bits r(width_);
    for (size_t i = 0; i < words_.size(); i++)
        r.words_[i] = words_[i] | o.words_[i];
    return r;
}

Bits
Bits::operator^(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_, "width mismatch %u vs %u", width_,
               o.width_);
    Bits r(width_);
    for (size_t i = 0; i < words_.size(); i++)
        r.words_[i] = words_[i] ^ o.words_[i];
    return r;
}

Bits
Bits::operator~() const
{
    Bits r(width_);
    for (size_t i = 0; i < words_.size(); i++)
        r.words_[i] = ~words_[i];
    r.normalize();
    return r;
}

bool
Bits::operator==(const Bits &o) const
{
    return width_ == o.width_ && words_ == o.words_;
}

bool
Bits::ult(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_, "width mismatch %u vs %u", width_,
               o.width_);
    for (size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != o.words_[i])
            return words_[i] < o.words_[i];
    }
    return false;
}

bool
Bits::slt(const Bits &o) const
{
    R2U_ASSERT(width_ == o.width_ && width_ > 0, "bad widths %u vs %u",
               width_, o.width_);
    bool sa = bit(width_ - 1), sb = o.bit(width_ - 1);
    if (sa != sb)
        return sa; // negative < non-negative
    return ult(o);
}

Bits
Bits::shl(unsigned amount) const
{
    Bits r(width_);
    for (unsigned i = 0; i < width_; i++) {
        if (i >= amount && bit(i - amount))
            r.setBit(i, true);
    }
    return r;
}

Bits
Bits::lshr(unsigned amount) const
{
    Bits r(width_);
    for (unsigned i = 0; i + amount < width_; i++) {
        if (bit(i + amount))
            r.setBit(i, true);
    }
    return r;
}

Bits
Bits::ashr(unsigned amount) const
{
    Bits r = lshr(amount);
    if (width_ > 0 && bit(width_ - 1)) {
        unsigned start = amount >= width_ ? 0 : width_ - amount;
        for (unsigned i = start; i < width_; i++)
            r.setBit(i, true);
    }
    return r;
}

Bits
Bits::slice(unsigned lo, unsigned w) const
{
    R2U_ASSERT(lo + w <= width_, "slice [%u +: %u] out of width %u", lo, w,
               width_);
    Bits r(w);
    for (unsigned i = 0; i < w; i++)
        if (bit(lo + i))
            r.setBit(i, true);
    return r;
}

Bits
Bits::concat(const Bits &hi, const Bits &lo)
{
    Bits r(hi.width_ + lo.width_);
    for (unsigned i = 0; i < lo.width_; i++)
        if (lo.bit(i))
            r.setBit(i, true);
    for (unsigned i = 0; i < hi.width_; i++)
        if (hi.bit(i))
            r.setBit(lo.width_ + i, true);
    return r;
}

Bits
Bits::zext(unsigned new_width) const
{
    R2U_ASSERT(new_width >= width_, "zext shrinks %u -> %u", width_,
               new_width);
    Bits r(new_width);
    for (size_t i = 0; i < words_.size(); i++)
        r.words_[i] = words_[i];
    r.normalize();
    return r;
}

Bits
Bits::sext(unsigned new_width) const
{
    R2U_ASSERT(new_width >= width_ && width_ > 0, "sext %u -> %u", width_,
               new_width);
    Bits r = zext(new_width);
    if (bit(width_ - 1)) {
        for (unsigned i = width_; i < new_width; i++)
            r.setBit(i, true);
    }
    return r;
}

unsigned
Bits::popcount() const
{
    unsigned n = 0;
    for (uint64_t w : words_)
        n += static_cast<unsigned>(__builtin_popcountll(w));
    return n;
}

std::string
Bits::toBinString() const
{
    std::string s;
    s.reserve(width_);
    for (unsigned i = width_; i-- > 0;)
        s.push_back(bit(i) ? '1' : '0');
    return s;
}

std::string
Bits::toHexString() const
{
    static const char digits[] = "0123456789abcdef";
    unsigned ndigits = (width_ + 3) / 4;
    std::string s;
    s.reserve(ndigits);
    for (unsigned d = ndigits; d-- > 0;) {
        unsigned v = 0;
        for (unsigned b = 0; b < 4; b++) {
            unsigned i = d * 4 + b;
            if (i < width_ && bit(i))
                v |= 1u << b;
        }
        s.push_back(digits[v]);
    }
    return s;
}

size_t
Bits::hash() const
{
    size_t h = std::hash<unsigned>{}(width_);
    for (uint64_t w : words_)
        h = h * 1099511628211ull + std::hash<uint64_t>{}(w);
    return h;
}

} // namespace r2u
