/**
 * @file
 * Status-message and error-reporting helpers, modeled on the gem5
 * logging conventions (inform/warn/fatal/panic).
 *
 * fatal() is for user errors (bad input design, bad metadata): it throws
 * a FatalError so library embedders can recover. panic() is for internal
 * invariant violations (bugs in this library): it aborts.
 */

#ifndef R2U_COMMON_LOGGING_HH
#define R2U_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace r2u
{

/** Exception thrown by fatal(): the input (design/metadata/test) is bad. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Global verbosity: 0 = quiet, 1 = inform, 2 = debug. */
int logVerbosity();
void setLogVerbosity(int level);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
std::string vstrfmt(const char *fmt, va_list ap);

/** Informative status message (verbosity >= 1). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level message (verbosity >= 2). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something works but is suspicious; always printed to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Unrecoverable *user* error: throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unrecoverable *internal* error: prints and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** assert-like check that survives NDEBUG and panics with a message. */
#define R2U_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::r2u::panic("assertion '%s' failed at %s:%d: %s", #cond,     \
                         __FILE__, __LINE__,                              \
                         ::r2u::strfmt(__VA_ARGS__).c_str());             \
        }                                                                 \
    } while (0)

} // namespace r2u

#endif // R2U_COMMON_LOGGING_HH
