#include "common/dot.hh"

#include "common/strutil.hh"

namespace r2u
{

DotWriter::DotWriter(const std::string &graph_name) : name_(graph_name)
{
}

std::string
DotWriter::escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
DotWriter::addNode(const std::string &id, const std::string &label,
                   const std::string &attrs)
{
    std::string line = "  \"" + escape(id) + "\" [label=\"" +
                       escape(label) + "\"";
    if (!attrs.empty())
        line += ", " + attrs;
    line += "];";
    lines_.push_back(line);
}

void
DotWriter::addEdge(const std::string &from, const std::string &to,
                   const std::string &label, const std::string &attrs)
{
    std::string line = "  \"" + escape(from) + "\" -> \"" + escape(to) +
                       "\"";
    std::string a;
    if (!label.empty())
        a = "label=\"" + escape(label) + "\"";
    if (!attrs.empty())
        a += (a.empty() ? "" : ", ") + attrs;
    if (!a.empty())
        line += " [" + a + "]";
    line += ";";
    lines_.push_back(line);
}

void
DotWriter::addRaw(const std::string &line)
{
    lines_.push_back("  " + line);
}

std::string
DotWriter::render() const
{
    std::string out = "digraph \"" + escape(name_) + "\" {\n";
    for (const auto &l : lines_)
        out += l + "\n";
    out += "}\n";
    return out;
}

void
DotWriter::writeTo(const std::string &path) const
{
    writeFile(path, render());
}

} // namespace r2u
