#include "common/thread_pool.hh"

#include <utility>

#include "common/logging.hh"

namespace r2u
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers < 1)
        workers = 1;
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    try {
        wait();
    } catch (...) {
        // A task exception nobody collected via wait(); dropping it is
        // the best a destructor can do.
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    R2U_ASSERT(task != nullptr, "null task submitted");
    unsigned q;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_++;
        q = next_queue_;
        next_queue_ = (next_queue_ + 1) % workers();
    }
    {
        std::lock_guard<std::mutex> lock(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

bool
ThreadPool::tryPop(unsigned self, Task &out)
{
    // Own queue first, newest task first.
    {
        WorkerQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal the oldest task from someone else. Count via queues_ (not
    // workers()): threads_ is still growing in the constructor while
    // early workers already run, but queues_ is complete before the
    // first thread starts.
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned i = 1; i < n; i++) {
        WorkerQueue &q = *queues_[(self + i) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            steals_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerMain(unsigned self)
{
    while (true) {
        Task task;
        if (tryPop(self, task)) {
            std::exception_ptr err;
            try {
                task(self);
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (err && !first_error_)
                first_error_ = err;
            if (--pending_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_)
            return;
        // Re-check the queues under the pool lock: a submit may have
        // raced between our empty scan and this wait.
        bool any = false;
        for (auto &q : queues_) {
            std::lock_guard<std::mutex> qlock(q->mutex);
            any |= !q->tasks.empty();
        }
        if (any)
            continue;
        work_cv_.wait(lock);
    }
}

} // namespace r2u
