#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace r2u
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers < 1)
        workers = 1;
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    R2U_ASSERT(task != nullptr, "null task submitted");
    unsigned q;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_++;
        q = next_queue_;
        next_queue_ = (next_queue_ + 1) % workers();
    }
    {
        std::lock_guard<std::mutex> lock(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool
ThreadPool::tryPop(unsigned self, Task &out)
{
    // Own queue first, newest task first.
    {
        WorkerQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal the oldest task from someone else.
    for (unsigned i = 1; i < workers(); i++) {
        WorkerQueue &q = *queues_[(self + i) % workers()];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            std::lock_guard<std::mutex> slock(mutex_);
            steals_++;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerMain(unsigned self)
{
    while (true) {
        Task task;
        if (tryPop(self, task)) {
            task(self);
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_)
            return;
        // Re-check the queues under the pool lock: a submit may have
        // raced between our empty scan and this wait.
        bool any = false;
        for (auto &q : queues_) {
            std::lock_guard<std::mutex> qlock(q->mutex);
            any |= !q->tasks.empty();
        }
        if (any)
            continue;
        work_cv_.wait(lock);
    }
}

} // namespace r2u
