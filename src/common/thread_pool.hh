/**
 * @file
 * A small work-stealing thread pool.
 *
 * Built for the BMC query engine (src/bmc/engine): a batch of
 * independent property queries is submitted and the pool evaluates
 * them on N long-lived workers. Each worker owns a deque; it pops its
 * own tasks LIFO (cache-friendly) and steals FIFO from the other
 * workers when idle, so a few long-running queries do not strand the
 * rest of the batch behind one worker.
 *
 * Tasks receive the worker index they run on, which lets callers keep
 * per-worker state (the engine's incremental solver contexts) without
 * any locking of their own.
 */

#ifndef R2U_COMMON_THREAD_POOL_HH
#define R2U_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace r2u
{

class ThreadPool
{
  public:
    /** A task; the argument is the index of the worker running it. */
    using Task = std::function<void(unsigned worker)>;

    /** Spawn @p workers threads (at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Enqueue a task. Never blocks; tasks may start immediately. */
    void submit(Task task);

    /**
     * Block until every task submitted so far has finished. Tasks may
     * be submitted again afterwards; the pool stays alive.
     *
     * If any task threw, the first captured exception is rethrown here
     * (after all tasks have settled) and the pool is left reusable.
     */
    void wait();

    /** Number of times an idle worker stole from another's queue. */
    uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerMain(unsigned self);
    bool tryPop(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex mutex_; ///< guards pending_/stop_/first_error_ and the cvs
    std::condition_variable work_cv_; ///< signaled on submit/stop
    std::condition_variable idle_cv_; ///< signaled when pending_ hits 0
    size_t pending_ = 0; ///< submitted but not yet finished
    bool stop_ = false;
    unsigned next_queue_ = 0; ///< round-robin submission cursor
    std::exception_ptr first_error_; ///< first task exception, for wait()
    std::atomic<uint64_t> steals_{0};
};

} // namespace r2u

#endif // R2U_COMMON_THREAD_POOL_HH
