#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace r2u
{

namespace
{
int g_verbosity = 1;

/**
 * Serializes whole log lines. The BMC engine's workers log from
 * multiple threads; each message is formatted first and then emitted
 * under this lock so lines never tear or interleave.
 */
std::mutex g_log_mutex;

void
emitLine(std::FILE *stream, const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stream, "%s%s\n", prefix, msg.c_str());
}
} // namespace

int
logVerbosity()
{
    return g_verbosity;
}

void
setLogVerbosity(int level)
{
    g_verbosity = level;
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
inform(const char *fmt, ...)
{
    if (g_verbosity < 1)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    emitLine(stdout, "info: ", s);
}

void
debugLog(const char *fmt, ...)
{
    if (g_verbosity < 2)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    emitLine(stdout, "debug: ", s);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    emitLine(stderr, "warn: ", s);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(s);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

} // namespace r2u
