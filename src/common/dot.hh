/**
 * @file
 * Minimal Graphviz DOT emitter, used for full-design DFGs,
 * per-instruction DFGs, and µhb graphs (Fig. 1b style output).
 */

#ifndef R2U_COMMON_DOT_HH
#define R2U_COMMON_DOT_HH

#include <string>
#include <vector>

namespace r2u
{

class DotWriter
{
  public:
    explicit DotWriter(const std::string &graph_name);

    /** Add a node; @p attrs are raw DOT attributes ("shape=box"). */
    void addNode(const std::string &id, const std::string &label,
                 const std::string &attrs = "");

    void addEdge(const std::string &from, const std::string &to,
                 const std::string &label = "",
                 const std::string &attrs = "");

    /** Arbitrary raw line inside the graph body (rank constraints etc). */
    void addRaw(const std::string &line);

    std::string render() const;

    void writeTo(const std::string &path) const;

    static std::string escape(const std::string &s);

  private:
    std::string name_;
    std::vector<std::string> lines_;
};

} // namespace r2u

#endif // R2U_COMMON_DOT_HH
