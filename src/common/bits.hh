/**
 * @file
 * Bits: an arbitrary-width two's-complement bitvector value.
 *
 * This is the single value type shared by the netlist simulator, the
 * Verilog constant folder, and counterexample-trace reconstruction in the
 * BMC engine. Widths are explicit; binary operations require operands of
 * equal width and produce a result of the same width (Verilog-style
 * self-determined arithmetic); widening is explicit via zext/sext.
 */

#ifndef R2U_COMMON_BITS_HH
#define R2U_COMMON_BITS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace r2u
{

class Bits
{
  public:
    /** Zero-width (invalid-for-arith) value; useful as a placeholder. */
    Bits() = default;

    /** All-zero value of the given width. */
    explicit Bits(unsigned width);

    /** Value of the given width from the low bits of @p value. */
    Bits(unsigned width, uint64_t value);

    static Bits ones(unsigned width);

    /** Parse a binary string of '0'/'1', MSB first. */
    static Bits fromBinString(const std::string &s);

    unsigned width() const { return width_; }

    bool bit(unsigned i) const;
    void setBit(unsigned i, bool v);

    /** Low (up to) 64 bits as an unsigned integer. */
    uint64_t toUint64() const;

    /** Sign-extended low 64 bits as a signed integer. */
    int64_t toInt64() const;

    bool isZero() const;
    bool isAllOnes() const;

    /** Reduction OR: true iff any bit set (Verilog truthiness). */
    bool toBool() const { return !isZero(); }

    Bits operator+(const Bits &o) const;
    Bits operator-(const Bits &o) const;
    Bits operator*(const Bits &o) const;
    Bits operator&(const Bits &o) const;
    Bits operator|(const Bits &o) const;
    Bits operator^(const Bits &o) const;
    Bits operator~() const;

    bool operator==(const Bits &o) const;
    bool operator!=(const Bits &o) const { return !(*this == o); }

    /** Unsigned / signed less-than; widths must match. */
    bool ult(const Bits &o) const;
    bool slt(const Bits &o) const;

    /** Shifts keep the operand width. */
    Bits shl(unsigned amount) const;
    Bits lshr(unsigned amount) const;
    Bits ashr(unsigned amount) const;

    /** Extract @p w bits starting at bit @p lo (must fit). */
    Bits slice(unsigned lo, unsigned w) const;

    /** {hi, lo} concatenation: result width = hi.width + lo.width. */
    static Bits concat(const Bits &hi, const Bits &lo);

    Bits zext(unsigned new_width) const;
    Bits sext(unsigned new_width) const;

    /** Number of set bits. */
    unsigned popcount() const;

    std::string toBinString() const;
    std::string toHexString() const;

    size_t hash() const;

  private:
    void normalize();
    static unsigned wordsFor(unsigned width) { return (width + 63) / 64; }

    unsigned width_ = 0;
    std::vector<uint64_t> words_;
};

/** std::hash adapter. */
struct BitsHash
{
    size_t operator()(const Bits &b) const { return b.hash(); }
};

} // namespace r2u

#endif // R2U_COMMON_BITS_HH
