#include "common/strutil.hh"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace r2u
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        b++;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        e--;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

int64_t
parseInt64(const char *opt, const std::string &s, int base)
{
    try {
        size_t pos = 0;
        int64_t v = std::stoll(s, &pos, base);
        if (pos != s.size())
            throw std::invalid_argument(s);
        return v;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("%s expects an integer, got '%s'", opt, s.c_str());
    }
}

int
parseInt(const char *opt, const std::string &s)
{
    int64_t v = parseInt64(opt, s);
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max())
        fatal("%s: '%s' is out of range", opt, s.c_str());
    return static_cast<int>(v);
}

double
parseDouble(const char *opt, const std::string &s)
{
    try {
        size_t pos = 0;
        double v = std::stod(s, &pos);
        if (pos != s.size())
            throw std::invalid_argument(s);
        return v;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("%s expects a number, got '%s'", opt, s.c_str());
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot open file '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot write file '%s'", path.c_str());
    f << contents;
}

} // namespace r2u
