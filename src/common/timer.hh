/**
 * @file
 * Simple wall-clock stopwatch used by the synthesis statistics and the
 * benchmark harnesses.
 */

#ifndef R2U_COMMON_TIMER_HH
#define R2U_COMMON_TIMER_HH

#include <chrono>

namespace r2u
{

class Timer
{
  public:
    Timer() { reset(); }

    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace r2u

#endif // R2U_COMMON_TIMER_HH
