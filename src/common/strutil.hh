/**
 * @file
 * Small string utilities shared across the library.
 */

#ifndef R2U_COMMON_STRUTIL_HH
#define R2U_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace r2u
{

/** Split @p s at every occurrence of @p sep (empty fields kept). */
std::vector<std::string> split(const std::string &s, char sep);

/** Split on runs of whitespace (no empty fields). */
std::vector<std::string> splitWs(const std::string &s);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/**
 * Whole-token numeric option parsing, shared by the tool CLIs and the
 * benches. Bare std::stoi/atoi would let `--jobs foo` or an
 * out-of-range `--bound` kill the process with an uncaught exception
 * (or silently read 0): these insist the entire token parses and turn
 * any malformed/partial/overflowing value into a fatal() — which the
 * callers' option loops convert into a usage error (exit 2).
 * @p opt names the offending option in the message.
 */
int64_t parseInt64(const char *opt, const std::string &s, int base = 10);

/** parseInt64 plus an int range check. */
int parseInt(const char *opt, const std::string &s);

/** Whole-token floating-point option parsing (see parseInt64). */
double parseDouble(const char *opt, const std::string &s);

/** Read an entire file; fatal() if it cannot be opened. */
std::string readFile(const std::string &path);

/** Write a file; fatal() on failure. */
void writeFile(const std::string &path, const std::string &contents);

} // namespace r2u

#endif // R2U_COMMON_STRUTIL_HH
