/**
 * @file
 * Full-design data-flow graphs over state elements (paper §4.1).
 *
 * Nodes are the design's state elements — individual registers ($dff
 * cells) and memory arrays. A directed edge A -> B means B's next
 * state (register D/EN cone, or a memory write port's address, data,
 * or enable cone) reads A through pure combinational logic; all
 * combinational cells are collapsed out. Memory reads contribute two
 * kinds of parents: the memory array itself and everything feeding the
 * read address.
 *
 * The module also implements the paper's stage labeling (§4.2.2):
 * BFS distance from the IM_PC register, front-end filtering of nodes
 * that precede the IFR, and renumbering so the IFR's stage is 0; and
 * per-instruction DFG extraction (§4.2.3) given the proven
 * always-updated node set.
 */

#ifndef R2U_DFG_DFG_HH
#define R2U_DFG_DFG_HH

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hh"

namespace r2u::dfg
{

using NodeId = int;
constexpr NodeId kNoNode = -1;

struct Node
{
    NodeId id = kNoNode;
    bool isMem = false;
    nl::CellId reg = nl::kNoCell; ///< valid when !isMem
    nl::MemId mem = -1;           ///< valid when isMem
    std::string name;
};

class FullDesignDfg
{
  public:
    /** Extract the full-design DFG from a netlist. */
    static FullDesignDfg build(const nl::Netlist &netlist);

    const nl::Netlist &netlist() const { return *nl_; }

    size_t numNodes() const { return nodes_.size(); }
    const Node &node(NodeId id) const { return nodes_[id]; }

    NodeId nodeOfReg(nl::CellId reg) const;
    NodeId nodeOfMem(nl::MemId mem) const;
    NodeId nodeByName(const std::string &name) const;

    /** Parents of a node (state it reads); no duplicates, may include
     *  the node itself for hold/feedback paths. */
    const std::vector<NodeId> &parents(NodeId id) const;
    const std::vector<NodeId> &children(NodeId id) const;

    /**
     * Shortest distance (in DFG edges) from @p from to every node,
     * ignoring self-loops; -1 if unreachable. Used for stage labels.
     */
    std::vector<int> distancesFrom(NodeId from) const;

    /**
     * The state elements feeding a combinational cone rooted at
     * @p wire (stops at registers and memory reads).
     */
    std::set<NodeId> coneSources(nl::CellId wire) const;

    std::string toDot() const;

  private:
    const nl::Netlist *nl_ = nullptr;
    std::vector<Node> nodes_;
    std::vector<std::vector<NodeId>> parents_;
    std::vector<std::vector<NodeId>> children_;
    std::unordered_map<nl::CellId, NodeId> by_reg_;
    std::unordered_map<nl::MemId, NodeId> by_mem_;
};

/** Result of §4.2.2 stage labeling. */
struct StageLabels
{
    /**
     * Per-node stage relative to the IFR (IFR = 0); -1 for nodes that
     * are filtered out (unreachable from IM_PC or ahead of the IFR).
     */
    std::vector<int> stage;

    int maxStage = 0;

    bool included(NodeId n) const { return stage[n] >= 0; }
};

/**
 * Label every DFG node with its pipeline stage: BFS distance from
 * @p im_pc, keeping the shortest distance on cycles, filtering nodes
 * closer to IM_PC than the IFR, renumbering so stage(IFR) == 0.
 */
StageLabels labelStages(const FullDesignDfg &dfg, NodeId im_pc,
                        NodeId ifr);

/** Per-instruction specialized DFG (§4.2.3). */
struct InstrDfg
{
    std::string instr; ///< instruction type name ("lw", "sw")
    NodeId ifr = kNoNode;
    /** Nodes proven always-updated during execution (includes IFR). */
    std::set<NodeId> nodes;
    /** Reserved parent nodes (§4.2.3): immediate parents of members. */
    std::set<NodeId> parents;
    /** DFG edges restricted to member/parent nodes. */
    std::vector<std::pair<NodeId, NodeId>> edges;
};

/**
 * Extract an instruction-specific DFG: keep @p updated nodes that are
 * reachable from the IFR inside the updated set, add immediate parent
 * nodes, and retain edges relating the kept nodes.
 */
InstrDfg buildInstrDfg(const FullDesignDfg &dfg, const std::string &instr,
                       NodeId ifr, const std::set<NodeId> &updated);

std::string instrDfgToDot(const FullDesignDfg &dfg, const InstrDfg &idfg);

} // namespace r2u::dfg

#endif // R2U_DFG_DFG_HH
