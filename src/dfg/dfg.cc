#include "dfg/dfg.hh"

#include <algorithm>
#include <deque>

#include "common/dot.hh"
#include "common/logging.hh"

namespace r2u::dfg
{

using nl::CellId;
using nl::CellKind;

FullDesignDfg
FullDesignDfg::build(const nl::Netlist &netlist)
{
    FullDesignDfg dfg;
    dfg.nl_ = &netlist;

    // Create nodes for every register and memory.
    for (CellId reg : netlist.dffs()) {
        Node n;
        n.id = static_cast<NodeId>(dfg.nodes_.size());
        n.isMem = false;
        n.reg = reg;
        n.name = netlist.cell(reg).name;
        dfg.by_reg_[reg] = n.id;
        dfg.nodes_.push_back(std::move(n));
    }
    for (size_t m = 0; m < netlist.numMemories(); m++) {
        Node n;
        n.id = static_cast<NodeId>(dfg.nodes_.size());
        n.isMem = true;
        n.mem = static_cast<nl::MemId>(m);
        n.name = netlist.memory(static_cast<nl::MemId>(m)).name;
        dfg.by_mem_[n.mem] = n.id;
        dfg.nodes_.push_back(std::move(n));
    }

    dfg.parents_.resize(dfg.nodes_.size());
    dfg.children_.resize(dfg.nodes_.size());

    // For each node, collect the state elements in its next-state cone.
    for (const Node &n : dfg.nodes_) {
        std::set<NodeId> srcs;
        if (!n.isMem) {
            const nl::Cell &c = netlist.cell(n.reg);
            for (CellId in : c.inputs) {
                auto s = dfg.coneSources(in);
                srcs.insert(s.begin(), s.end());
            }
        } else {
            const nl::Memory &m = netlist.memory(n.mem);
            for (CellId port : m.writePorts) {
                for (CellId in : netlist.cell(port).inputs) {
                    auto s = dfg.coneSources(in);
                    srcs.insert(s.begin(), s.end());
                }
            }
        }
        for (NodeId p : srcs) {
            dfg.parents_[n.id].push_back(p);
            dfg.children_[p].push_back(n.id);
        }
    }
    return dfg;
}

std::set<NodeId>
FullDesignDfg::coneSources(CellId wire) const
{
    std::set<NodeId> out;
    std::vector<CellId> stack{wire};
    std::set<CellId> seen;
    while (!stack.empty()) {
        CellId id = stack.back();
        stack.pop_back();
        if (!seen.insert(id).second)
            continue;
        const nl::Cell &c = nl_->cell(id);
        switch (c.kind) {
          case CellKind::Dff:
            out.insert(by_reg_.at(id));
            break;
          case CellKind::MemRead:
            out.insert(by_mem_.at(c.mem));
            stack.push_back(c.inputs[0]); // the address cone
            break;
          case CellKind::Const:
          case CellKind::Input:
            break;
          default:
            for (CellId in : c.inputs)
                stack.push_back(in);
            break;
        }
    }
    return out;
}

NodeId
FullDesignDfg::nodeOfReg(CellId reg) const
{
    auto it = by_reg_.find(reg);
    return it == by_reg_.end() ? kNoNode : it->second;
}

NodeId
FullDesignDfg::nodeOfMem(nl::MemId mem) const
{
    auto it = by_mem_.find(mem);
    return it == by_mem_.end() ? kNoNode : it->second;
}

NodeId
FullDesignDfg::nodeByName(const std::string &name) const
{
    for (const Node &n : nodes_)
        if (n.name == name)
            return n.id;
    return kNoNode;
}

const std::vector<NodeId> &
FullDesignDfg::parents(NodeId id) const
{
    return parents_[id];
}

const std::vector<NodeId> &
FullDesignDfg::children(NodeId id) const
{
    return children_[id];
}

std::vector<int>
FullDesignDfg::distancesFrom(NodeId from) const
{
    std::vector<int> dist(nodes_.size(), -1);
    std::deque<NodeId> queue;
    dist[from] = 0;
    queue.push_back(from);
    while (!queue.empty()) {
        NodeId n = queue.front();
        queue.pop_front();
        for (NodeId c : children_[n]) {
            if (c == n)
                continue; // ignore self-loops (hold paths)
            if (dist[c] < 0) {
                dist[c] = dist[n] + 1;
                queue.push_back(c);
            }
        }
    }
    return dist;
}

std::string
FullDesignDfg::toDot() const
{
    DotWriter dot("full_design_dfg");
    for (const Node &n : nodes_) {
        dot.addNode(n.name, n.name,
                    n.isMem ? "shape=box3d" : "shape=box");
    }
    for (const Node &n : nodes_)
        for (NodeId p : parents_[n.id])
            dot.addEdge(nodes_[p].name, n.name);
    return dot.render();
}

StageLabels
labelStages(const FullDesignDfg &dfg, NodeId im_pc, NodeId ifr)
{
    R2U_ASSERT(im_pc != kNoNode && ifr != kNoNode,
               "stage labeling needs IM_PC and IFR nodes");
    std::vector<int> dist = dfg.distancesFrom(im_pc);
    int ifr_dist = dist[ifr];
    if (ifr_dist < 0)
        fatal("IFR '%s' is not reachable from IM_PC '%s' in the DFG",
              dfg.node(ifr).name.c_str(), dfg.node(im_pc).name.c_str());

    StageLabels labels;
    labels.stage.assign(dfg.numNodes(), -1);
    for (size_t n = 0; n < dfg.numNodes(); n++) {
        if (dist[n] < 0 || dist[n] < ifr_dist)
            continue; // front-end filtering (§4.2.2)
        labels.stage[n] = dist[n] - ifr_dist;
        labels.maxStage = std::max(labels.maxStage, labels.stage[n]);
    }
    return labels;
}

InstrDfg
buildInstrDfg(const FullDesignDfg &dfg, const std::string &instr,
              NodeId ifr, const std::set<NodeId> &updated)
{
    InstrDfg out;
    out.instr = instr;
    out.ifr = ifr;

    // Keep updated nodes reachable from the IFR within the updated set
    // (the IFR is the primary root, §4.2.3).
    std::vector<NodeId> stack{ifr};
    out.nodes.insert(ifr);
    while (!stack.empty()) {
        NodeId n = stack.back();
        stack.pop_back();
        for (NodeId c : dfg.children(n)) {
            if (c == n || !updated.count(c) || out.nodes.count(c))
                continue;
            out.nodes.insert(c);
            stack.push_back(c);
        }
    }

    // Reserved parent nodes: immediate DFG parents of members that are
    // not themselves members (e.g. regfile, mem — §4.2.3).
    for (NodeId n : out.nodes) {
        for (NodeId p : dfg.parents(n)) {
            if (p != n && !out.nodes.count(p))
                out.parents.insert(p);
        }
    }

    // Edges restricted to kept nodes (member->member and
    // parent->member).
    for (NodeId n : out.nodes) {
        for (NodeId p : dfg.parents(n)) {
            if (p == n)
                continue;
            if (out.nodes.count(p) || out.parents.count(p))
                out.edges.emplace_back(p, n);
        }
    }
    std::sort(out.edges.begin(), out.edges.end());
    return out;
}

std::string
instrDfgToDot(const FullDesignDfg &dfg, const InstrDfg &idfg)
{
    DotWriter dot("dfg_" + idfg.instr);
    for (NodeId n : idfg.nodes) {
        std::string attrs = "shape=box";
        if (n == idfg.ifr)
            attrs += ", style=bold";
        dot.addNode(dfg.node(n).name, dfg.node(n).name, attrs);
    }
    for (NodeId p : idfg.parents)
        dot.addNode(dfg.node(p).name, dfg.node(p).name,
                    "shape=box, style=dashed");
    for (const auto &[a, b] : idfg.edges)
        dot.addEdge(dfg.node(a).name, dfg.node(b).name);
    return dot.render();
}

} // namespace r2u::dfg
