/**
 * @file
 * RV32I-subset ISA support: instruction representation, RISC-V binary
 * encodings, a small assembler, and a golden functional core model.
 *
 * The subset covers what the multi-V-scale implements and what litmus
 * tests need: LUI, ADDI, register ALU ops, LW/SW, BEQ/BNE, JAL and
 * FENCE (a no-op on this strongly-ordered design). The same encodings
 * are decoded by the Verilog core, so the golden model doubles as the
 * reference for RTL correctness tests.
 */

#ifndef R2U_ISA_ISA_HH
#define R2U_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace r2u::isa
{

enum class Op {
    Lui,
    Addi,
    Add,
    Sub,
    And,
    Or,
    Xor,
    Lw,
    Sw,
    Beq,
    Bne,
    Jal,
    Fence,
    Invalid
};

const char *opName(Op op);

struct Inst
{
    Op op = Op::Invalid;
    int rd = 0;
    int rs1 = 0;
    int rs2 = 0;
    int32_t imm = 0;
    uint32_t raw = 0; ///< original encoding (for Invalid round-trips)

    bool isLoad() const { return op == Op::Lw; }
    bool isStore() const { return op == Op::Sw; }
    bool isMem() const { return isLoad() || isStore(); }
};

/** Encode to a 32-bit RV32I instruction word. */
uint32_t encode(const Inst &inst);

/** Decode a 32-bit word; unknown encodings yield Op::Invalid. */
Inst decode(uint32_t word);

/** A canonical NOP (addi x0, x0, 0). */
uint32_t nopWord();

/**
 * Parse one assembly line, e.g. "addi x1, x0, 1", "sw x1, 0(x2)",
 * "lw x3, 4(x0)", "beq x1, x2, 8". Branch/jump offsets are byte
 * offsets relative to the instruction. fatal() on syntax errors.
 */
Inst parseAsm(const std::string &line);

/** Assemble a multi-line program ('#' and ';' start comments). */
std::vector<uint32_t> assemble(const std::string &program);

std::string disasm(const Inst &inst);

/**
 * Golden single-hart functional model. Memory is word-granular and
 * supplied by the embedder via simple callbacks, so the same model
 * drives both single-core checks and the SC interleaving enumerator.
 */
class GoldenCore
{
  public:
    explicit GoldenCore(unsigned xlen = 32);

    void reset(uint32_t pc = 0);

    uint32_t pc() const { return pc_; }
    uint32_t reg(int index) const { return regs_[index]; }
    void setReg(int index, uint32_t value);

    /**
     * Execute one instruction. @p load / @p store access word-aligned
     * addresses. Invalid instructions raise an exception: the golden
     * model skips them (pc += 4) with no architectural effect,
     * matching the fixed multi-V-scale's behavior.
     */
    template <typename LoadFn, typename StoreFn>
    void
    step(const Inst &inst, LoadFn &&load, StoreFn &&store)
    {
        uint32_t next_pc = pc_ + 4;
        switch (inst.op) {
          case Op::Lui:
            setReg(inst.rd, mask(static_cast<uint32_t>(inst.imm) << 12));
            break;
          case Op::Addi:
            setReg(inst.rd, mask(regs_[inst.rs1] +
                                 static_cast<uint32_t>(inst.imm)));
            break;
          case Op::Add:
            setReg(inst.rd, mask(regs_[inst.rs1] + regs_[inst.rs2]));
            break;
          case Op::Sub:
            setReg(inst.rd, mask(regs_[inst.rs1] - regs_[inst.rs2]));
            break;
          case Op::And:
            setReg(inst.rd, regs_[inst.rs1] & regs_[inst.rs2]);
            break;
          case Op::Or:
            setReg(inst.rd, regs_[inst.rs1] | regs_[inst.rs2]);
            break;
          case Op::Xor:
            setReg(inst.rd, regs_[inst.rs1] ^ regs_[inst.rs2]);
            break;
          case Op::Lw:
            setReg(inst.rd,
                   mask(load(mask(regs_[inst.rs1] +
                                  static_cast<uint32_t>(inst.imm)))));
            break;
          case Op::Sw:
            store(mask(regs_[inst.rs1] + static_cast<uint32_t>(inst.imm)),
                  regs_[inst.rs2]);
            break;
          case Op::Beq:
            if (regs_[inst.rs1] == regs_[inst.rs2])
                next_pc = pc_ + static_cast<uint32_t>(inst.imm);
            break;
          case Op::Bne:
            if (regs_[inst.rs1] != regs_[inst.rs2])
                next_pc = pc_ + static_cast<uint32_t>(inst.imm);
            break;
          case Op::Jal:
            setReg(inst.rd, pc_ + 4);
            next_pc = pc_ + static_cast<uint32_t>(inst.imm);
            break;
          case Op::Fence:
          case Op::Invalid:
            break;
        }
        pc_ = next_pc;
    }

    /** Truncate a value to the architectural width. */
    uint32_t
    mask(uint32_t v) const
    {
        return xlen_ >= 32 ? v : (v & ((1u << xlen_) - 1));
    }

  private:
    unsigned xlen_;
    uint32_t pc_ = 0;
    uint32_t regs_[32] = {};
};

} // namespace r2u::isa

#endif // R2U_ISA_ISA_HH
