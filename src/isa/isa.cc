#include "isa/isa.hh"

#include <cctype>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::isa
{

namespace
{

constexpr uint32_t kOpcLui = 0b0110111;
constexpr uint32_t kOpcOpImm = 0b0010011;
constexpr uint32_t kOpcOp = 0b0110011;
constexpr uint32_t kOpcLoad = 0b0000011;
constexpr uint32_t kOpcStore = 0b0100011;
constexpr uint32_t kOpcBranch = 0b1100011;
constexpr uint32_t kOpcJal = 0b1101111;
constexpr uint32_t kOpcFence = 0b0001111;

uint32_t
bitsOf(uint32_t v, int hi, int lo)
{
    return (v >> lo) & ((1u << (hi - lo + 1)) - 1);
}

int32_t
signExtend(uint32_t v, int bits)
{
    uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((v ^ m) - m);
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::Lui: return "lui";
      case Op::Addi: return "addi";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Lw: return "lw";
      case Op::Sw: return "sw";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Jal: return "jal";
      case Op::Fence: return "fence";
      case Op::Invalid: return "invalid";
    }
    return "?";
}

uint32_t
encode(const Inst &inst)
{
    uint32_t rd = static_cast<uint32_t>(inst.rd) & 31;
    uint32_t rs1 = static_cast<uint32_t>(inst.rs1) & 31;
    uint32_t rs2 = static_cast<uint32_t>(inst.rs2) & 31;
    uint32_t imm = static_cast<uint32_t>(inst.imm);
    switch (inst.op) {
      case Op::Lui:
        return (imm << 12) | (rd << 7) | kOpcLui;
      case Op::Addi:
        return (bitsOf(imm, 11, 0) << 20) | (rs1 << 15) | (0b000 << 12) |
               (rd << 7) | kOpcOpImm;
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor: {
        uint32_t funct3, funct7 = 0;
        switch (inst.op) {
          case Op::Add: funct3 = 0b000; break;
          case Op::Sub: funct3 = 0b000; funct7 = 0b0100000; break;
          case Op::And: funct3 = 0b111; break;
          case Op::Or: funct3 = 0b110; break;
          default: funct3 = 0b100; break; // Xor
        }
        return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) |
               (funct3 << 12) | (rd << 7) | kOpcOp;
      }
      case Op::Lw:
        return (bitsOf(imm, 11, 0) << 20) | (rs1 << 15) | (0b010 << 12) |
               (rd << 7) | kOpcLoad;
      case Op::Sw:
        return (bitsOf(imm, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
               (0b010 << 12) | (bitsOf(imm, 4, 0) << 7) | kOpcStore;
      case Op::Beq:
      case Op::Bne: {
        uint32_t funct3 = inst.op == Op::Beq ? 0b000 : 0b001;
        return (bitsOf(imm, 12, 12) << 31) | (bitsOf(imm, 10, 5) << 25) |
               (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
               (bitsOf(imm, 4, 1) << 8) | (bitsOf(imm, 11, 11) << 7) |
               kOpcBranch;
      }
      case Op::Jal:
        return (bitsOf(imm, 20, 20) << 31) | (bitsOf(imm, 10, 1) << 21) |
               (bitsOf(imm, 11, 11) << 20) | (bitsOf(imm, 19, 12) << 12) |
               (rd << 7) | kOpcJal;
      case Op::Fence:
        return kOpcFence;
      case Op::Invalid:
        return inst.raw;
    }
    panic("unreachable encode");
}

Inst
decode(uint32_t word)
{
    Inst inst;
    inst.raw = word;
    uint32_t opc = bitsOf(word, 6, 0);
    uint32_t rd = bitsOf(word, 11, 7);
    uint32_t funct3 = bitsOf(word, 14, 12);
    uint32_t rs1 = bitsOf(word, 19, 15);
    uint32_t rs2 = bitsOf(word, 24, 20);
    uint32_t funct7 = bitsOf(word, 31, 25);
    inst.rd = static_cast<int>(rd);
    inst.rs1 = static_cast<int>(rs1);
    inst.rs2 = static_cast<int>(rs2);

    switch (opc) {
      case kOpcLui:
        inst.op = Op::Lui;
        inst.imm = static_cast<int32_t>(bitsOf(word, 31, 12));
        return inst;
      case kOpcOpImm:
        if (funct3 != 0b000)
            break;
        inst.op = Op::Addi;
        inst.imm = signExtend(bitsOf(word, 31, 20), 12);
        return inst;
      case kOpcOp:
        if (funct3 == 0b000 && funct7 == 0)
            inst.op = Op::Add;
        else if (funct3 == 0b000 && funct7 == 0b0100000)
            inst.op = Op::Sub;
        else if (funct3 == 0b111 && funct7 == 0)
            inst.op = Op::And;
        else if (funct3 == 0b110 && funct7 == 0)
            inst.op = Op::Or;
        else if (funct3 == 0b100 && funct7 == 0)
            inst.op = Op::Xor;
        else
            break;
        return inst;
      case kOpcLoad:
        if (funct3 != 0b010)
            break;
        inst.op = Op::Lw;
        inst.imm = signExtend(bitsOf(word, 31, 20), 12);
        return inst;
      case kOpcStore:
        if (funct3 != 0b010)
            break;
        inst.op = Op::Sw;
        inst.imm = signExtend(
            (bitsOf(word, 31, 25) << 5) | bitsOf(word, 11, 7), 12);
        return inst;
      case kOpcBranch: {
        if (funct3 == 0b000)
            inst.op = Op::Beq;
        else if (funct3 == 0b001)
            inst.op = Op::Bne;
        else
            break;
        uint32_t imm = (bitsOf(word, 31, 31) << 12) |
                       (bitsOf(word, 7, 7) << 11) |
                       (bitsOf(word, 30, 25) << 5) |
                       (bitsOf(word, 11, 8) << 1);
        inst.imm = signExtend(imm, 13);
        return inst;
      }
      case kOpcJal: {
        inst.op = Op::Jal;
        uint32_t imm = (bitsOf(word, 31, 31) << 20) |
                       (bitsOf(word, 19, 12) << 12) |
                       (bitsOf(word, 20, 20) << 11) |
                       (bitsOf(word, 30, 21) << 1);
        inst.imm = signExtend(imm, 21);
        return inst;
      }
      case kOpcFence:
        inst.op = Op::Fence;
        return inst;
      default:
        break;
    }
    inst.op = Op::Invalid;
    return inst;
}

uint32_t
nopWord()
{
    Inst nop;
    nop.op = Op::Addi;
    return encode(nop);
}

namespace
{

int
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'x' && tok[0] != 'X'))
        fatal("bad register '%s'", tok.c_str());
    int n = 0;
    for (size_t i = 1; i < tok.size(); i++) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            fatal("bad register '%s'", tok.c_str());
        n = n * 10 + (tok[i] - '0');
    }
    if (n > 31)
        fatal("register out of range '%s'", tok.c_str());
    return n;
}

int32_t
parseImm(const std::string &tok)
{
    try {
        return static_cast<int32_t>(std::stol(tok, nullptr, 0));
    } catch (...) {
        fatal("bad immediate '%s'", tok.c_str());
    }
}

/** Split "imm(reg)" into its parts. */
void
parseMemOperand(const std::string &tok, int32_t &imm, int &reg)
{
    size_t lp = tok.find('(');
    size_t rp = tok.find(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        fatal("bad memory operand '%s'", tok.c_str());
    imm = lp == 0 ? 0 : parseImm(tok.substr(0, lp));
    reg = parseReg(tok.substr(lp + 1, rp - lp - 1));
}

} // namespace

Inst
parseAsm(const std::string &line)
{
    std::string clean = line;
    for (char &c : clean)
        if (c == ',')
            c = ' ';
    auto toks = splitWs(clean);
    if (toks.empty())
        fatal("empty assembly line");
    std::string m = toks[0];
    for (char &c : m)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

    Inst inst;
    auto need = [&](size_t n) {
        if (toks.size() != n + 1)
            fatal("'%s' expects %zu operands", m.c_str(), n);
    };

    if (m == "nop") {
        need(0);
        inst.op = Op::Addi;
        return inst;
    }
    if (m == "fence") {
        need(0);
        inst.op = Op::Fence;
        return inst;
    }
    if (m == "lui") {
        need(2);
        inst.op = Op::Lui;
        inst.rd = parseReg(toks[1]);
        inst.imm = parseImm(toks[2]);
        return inst;
    }
    if (m == "addi" || m == "li") {
        inst.op = Op::Addi;
        if (m == "li") {
            need(2);
            inst.rd = parseReg(toks[1]);
            inst.rs1 = 0;
            inst.imm = parseImm(toks[2]);
        } else {
            need(3);
            inst.rd = parseReg(toks[1]);
            inst.rs1 = parseReg(toks[2]);
            inst.imm = parseImm(toks[3]);
        }
        return inst;
    }
    if (m == "add" || m == "sub" || m == "and" || m == "or" ||
        m == "xor") {
        need(3);
        if (m == "add") inst.op = Op::Add;
        else if (m == "sub") inst.op = Op::Sub;
        else if (m == "and") inst.op = Op::And;
        else if (m == "or") inst.op = Op::Or;
        else inst.op = Op::Xor;
        inst.rd = parseReg(toks[1]);
        inst.rs1 = parseReg(toks[2]);
        inst.rs2 = parseReg(toks[3]);
        return inst;
    }
    if (m == "lw") {
        need(2);
        inst.op = Op::Lw;
        inst.rd = parseReg(toks[1]);
        parseMemOperand(toks[2], inst.imm, inst.rs1);
        return inst;
    }
    if (m == "sw") {
        need(2);
        inst.op = Op::Sw;
        inst.rs2 = parseReg(toks[1]);
        parseMemOperand(toks[2], inst.imm, inst.rs1);
        return inst;
    }
    if (m == "beq" || m == "bne") {
        need(3);
        inst.op = m == "beq" ? Op::Beq : Op::Bne;
        inst.rs1 = parseReg(toks[1]);
        inst.rs2 = parseReg(toks[2]);
        inst.imm = parseImm(toks[3]);
        return inst;
    }
    if (m == "jal") {
        need(2);
        inst.op = Op::Jal;
        inst.rd = parseReg(toks[1]);
        inst.imm = parseImm(toks[2]);
        return inst;
    }
    fatal("unknown mnemonic '%s'", m.c_str());
}

std::vector<uint32_t>
assemble(const std::string &program)
{
    std::vector<uint32_t> words;
    for (const auto &raw_line : split(program, '\n')) {
        std::string line = raw_line;
        size_t c = line.find_first_of("#;");
        if (c != std::string::npos)
            line = line.substr(0, c);
        line = trim(line);
        if (line.empty())
            continue;
        words.push_back(encode(parseAsm(line)));
    }
    return words;
}

std::string
disasm(const Inst &inst)
{
    switch (inst.op) {
      case Op::Lui:
        return strfmt("lui x%d, %d", inst.rd, inst.imm);
      case Op::Addi:
        return strfmt("addi x%d, x%d, %d", inst.rd, inst.rs1, inst.imm);
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
        return strfmt("%s x%d, x%d, x%d", opName(inst.op), inst.rd,
                      inst.rs1, inst.rs2);
      case Op::Lw:
        return strfmt("lw x%d, %d(x%d)", inst.rd, inst.imm, inst.rs1);
      case Op::Sw:
        return strfmt("sw x%d, %d(x%d)", inst.rs2, inst.imm, inst.rs1);
      case Op::Beq:
      case Op::Bne:
        return strfmt("%s x%d, x%d, %d", opName(inst.op), inst.rs1,
                      inst.rs2, inst.imm);
      case Op::Jal:
        return strfmt("jal x%d, %d", inst.rd, inst.imm);
      case Op::Fence:
        return "fence";
      case Op::Invalid:
        return strfmt(".word 0x%08x", inst.raw);
    }
    return "?";
}

GoldenCore::GoldenCore(unsigned xlen) : xlen_(xlen)
{
    R2U_ASSERT(xlen >= 4 && xlen <= 32, "unsupported xlen %u", xlen);
}

void
GoldenCore::reset(uint32_t pc)
{
    pc_ = pc;
    for (auto &r : regs_)
        r = 0;
}

void
GoldenCore::setReg(int index, uint32_t value)
{
    R2U_ASSERT(index >= 0 && index < 32, "bad register index");
    if (index != 0)
        regs_[index] = mask(value);
}

} // namespace r2u::isa
