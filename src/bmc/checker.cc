#include "bmc/checker.hh"

#include "common/logging.hh"
#include "common/timer.hh"

namespace r2u::bmc
{

using sat::Lit;
using sat::Word;

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Proven: return "proven";
      case Verdict::Refuted: return "cex";
      case Verdict::Unknown: return "undetermined";
    }
    return "?";
}

const char *
verdictSourceName(VerdictSource source)
{
    switch (source) {
      case VerdictSource::Solve: return "solve";
      case VerdictSource::Retry: return "retry";
      case VerdictSource::ConflictBudget: return "conflict-budget";
      case VerdictSource::PropagationBudget:
        return "propagation-budget";
      case VerdictSource::QueryDeadline: return "query-deadline";
      case VerdictSource::TotalDeadline: return "total-deadline";
      case VerdictSource::Cancelled: return "cancelled";
      case VerdictSource::Interrupted: return "interrupted";
      case VerdictSource::ValidationFailed: return "validation-failed";
      case VerdictSource::Portfolio: return "portfolio";
      case VerdictSource::Race: return "race";
    }
    return "?";
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Bmc: return "bmc";
      case EngineKind::KInduction: return "kind";
      case EngineKind::Pdr: return "pdr";
    }
    return "?";
}

void
applyLimits(sat::Solver &solver, const SolveLimits &limits)
{
    if (limits.config)
        solver.setConfig(*limits.config);
    solver.setConflictBudget(limits.conflicts);
    solver.setPropagationBudget(limits.propagations);
    solver.setDeadline(limits.seconds);
    solver.setExternalInterrupt(limits.cancel);
}

VerdictSource
sourceFromStop(sat::StopReason reason)
{
    switch (reason) {
      case sat::StopReason::None: return VerdictSource::Solve;
      case sat::StopReason::ConflictBudget:
        return VerdictSource::ConflictBudget;
      case sat::StopReason::PropagationBudget:
        return VerdictSource::PropagationBudget;
      case sat::StopReason::Deadline:
        return VerdictSource::QueryDeadline;
      case sat::StopReason::Interrupt:
        return VerdictSource::Interrupted;
    }
    return VerdictSource::Solve;
}

std::string
Trace::toString() const
{
    std::string out;
    for (size_t f = 0; f < steps.size(); f++) {
        out += strfmt("cycle %zu:\n", f);
        for (const auto &[name, value] : steps[f].signals) {
            out += strfmt("  %-40s = 0x%s\n", name.c_str(),
                          value.toHexString().c_str());
        }
        for (const auto &[name, value] : steps[f].memReads) {
            out += strfmt("  %-40s = 0x%s\n", name.c_str(),
                          value.toHexString().c_str());
        }
    }
    return out;
}

PropCtx::PropCtx(const nl::Netlist &netlist,
                 const std::unordered_map<std::string, nl::CellId> &signals,
                 Unroller::Options options, unsigned bound)
    : signals_(signals), cnf_(solver_),
      unroller_(netlist, cnf_, std::move(options)), bound_(bound)
{
    unroller_.ensureFrames(bound);
}

nl::CellId
PropCtx::cellOf(const std::string &name) const
{
    auto it = signals_.find(name);
    if (it == signals_.end())
        fatal("property references unknown signal '%s'", name.c_str());
    return it->second;
}

const Word &
PropCtx::at(unsigned frame, const std::string &name)
{
    R2U_ASSERT(frame < bound_, "frame %u beyond bound %u", frame, bound_);
    return unroller_.wire(frame, cellOf(name));
}

const Word &
PropCtx::rigid(const std::string &name, unsigned width)
{
    auto it = rigids_.find(name);
    if (it != rigids_.end()) {
        R2U_ASSERT(it->second.size() == width,
                   "rigid '%s' width mismatch", name.c_str());
        return it->second;
    }
    auto [it2, ok] = rigids_.emplace(name, cnf_.freshWord(width));
    (void)ok;
    return it2->second;
}

void
PropCtx::beginQuery()
{
    R2U_ASSERT(!in_query_, "beginQuery inside an active query");
    rigids_.clear();
    watched_.clear();
    watched_mems_.clear();
    act_ = cnf_.freshLit();
    in_query_ = true;
}

void
PropCtx::endQuery()
{
    R2U_ASSERT(in_query_, "endQuery without beginQuery");
    in_query_ = false;
    solver_.addClause(~act_);
    act_ = sat::kLitUndef;
}

void
PropCtx::seedFrom(const PropCtx &donor)
{
    R2U_ASSERT(!in_query_, "seedFrom into an active query");
    R2U_ASSERT(bound_ == donor.bound_, "seedFrom across bounds");
    solver_.cloneFrom(donor.solver_);
    cnf_.adoptState(donor.cnf_);
    unroller_.adoptState(donor.unroller_);
}

void
PropCtx::assume(Lit a)
{
    if (in_query_)
        solver_.addClause(~act_, a);
    else
        solver_.addClause(a);
}

void
PropCtx::pinInput(const std::string &name, uint64_t value)
{
    for (unsigned f = 0; f < bound_; f++)
        pinInputAt(f, name, value);
}

void
PropCtx::pinInputAt(unsigned frame, const std::string &name,
                    uint64_t value)
{
    const Word &w = at(frame, name);
    assume(cnf_.mkEqW(
        w, cnf_.constWord(static_cast<unsigned>(w.size()), value)));
}

void
PropCtx::watch(const std::string &name)
{
    for (const auto &existing : watched_)
        if (existing == name)
            return;
    watched_.push_back(name);
    // Trace extraction reads these wires after the solve; with
    // demand-driven unrolling their cones must be in the CNF before
    // solving, or wireValue would mint variables the model does not
    // cover. Demanding here (not at extract time) keeps watch()
    // the only contract a property needs.
    nl::CellId cell = cellOf(name);
    for (unsigned f = 0; f < bound_; f++)
        unroller_.wire(f, cell);
}

void
PropCtx::watchMem(const std::string &mem_name)
{
    nl::MemId mem = unroller_.netlist().findMemoryByName(mem_name);
    if (mem < 0)
        fatal("watchMem: unknown memory '%s'", mem_name.c_str());
    for (nl::MemId existing : watched_mems_)
        if (existing == mem)
            return;
    watched_mems_.push_back(mem);
    // Same contract as watch(): demand the read-port outputs (and
    // hence the memory arrays in their cones) before the solve so
    // trace extraction only reads model-covered variables.
    for (nl::CellId port : unroller_.netlist().memory(mem).readPorts)
        for (unsigned f = 0; f < bound_; f++)
            unroller_.wire(f, port);
}

Lit
PropCtx::eqConst(unsigned frame, const std::string &name, uint64_t value)
{
    const Word &w = at(frame, name);
    return cnf_.mkEqW(
        w, cnf_.constWord(static_cast<unsigned>(w.size()), value));
}

Lit
PropCtx::eqRigid(unsigned frame, const std::string &name, const Word &r)
{
    return cnf_.mkEqW(at(frame, name), r);
}

Lit
PropCtx::changedAt(unsigned frame, const std::string &name)
{
    R2U_ASSERT(frame >= 1, "changedAt needs a previous frame");
    return ~cnf_.mkEqW(at(frame, name), at(frame - 1, name));
}

Trace
extractTrace(PropCtx &ctx)
{
    Trace trace;
    Unroller &unr = ctx.unroller();
    const nl::Netlist &nl = unr.netlist();
    for (unsigned f = 0; f < ctx.bound(); f++) {
        TraceStep step;
        for (const auto &name : ctx.watched()) {
            step.signals[name] = unr.wireValue(f, ctx.cellOf(name));
        }
        for (nl::MemId mem : ctx.watchedMems()) {
            const nl::Memory &m = nl.memory(mem);
            for (size_t p = 0; p < m.readPorts.size(); p++) {
                if (!unr.wireMaterialized(f, m.readPorts[p]))
                    continue;
                step.memReads[strfmt("%s#%zu", m.name.c_str(), p)] =
                    unr.wireValue(f, m.readPorts[p]);
            }
        }
        trace.steps.push_back(std::move(step));
    }

    // Everything a replay needs to reproduce this execution: the model
    // values of every materialized input at every frame, and the
    // model's choice of symbolic initial state. Unmaterialized wires
    // are outside every demanded cone, so the values the simulator
    // defaults them to cannot change a recorded signal.
    trace.inputs.resize(ctx.bound());
    for (nl::CellId in : nl.inputs()) {
        for (unsigned f = 0; f < ctx.bound(); f++) {
            if (!unr.wireMaterialized(f, in))
                continue;
            trace.inputs[f][nl.cell(in).name] = unr.wireValue(f, in);
        }
    }
    if (!unr.options().concreteInit) {
        for (nl::CellId d : nl.dffs())
            if (unr.wireMaterialized(0, d) && !nl.cell(d).name.empty())
                trace.initRegs[nl.cell(d).name] = unr.wireValue(0, d);
    }
    for (size_t m = 0; m < nl.numMemories(); m++) {
        nl::MemId mem = static_cast<nl::MemId>(m);
        bool symbolic = !unr.options().concreteInit ||
                        unr.options().symbolicMems.count(mem) > 0 ||
                        unr.options().memInit.count(mem) > 0;
        if (!symbolic || !unr.memMaterialized(0, mem))
            continue;
        const nl::Memory &mm = nl.memory(mem);
        std::vector<Bits> words(mm.depth);
        for (unsigned a = 0; a < mm.depth; a++)
            words[a] = ctx.cnf().modelWord(unr.memWord(0, mem, a));
        trace.initMems[mm.name] = std::move(words);
    }
    return trace;
}

CheckResult
checkProperty(const nl::Netlist &netlist,
              const std::unordered_map<std::string, nl::CellId> &signals,
              Unroller::Options options, unsigned bound,
              const PropertyFn &prop, int64_t conflict_budget)
{
    SolveLimits limits;
    limits.conflicts = conflict_budget;
    return checkProperty(netlist, signals, std::move(options), bound,
                         prop, limits);
}

CheckResult
checkProperty(const nl::Netlist &netlist,
              const std::unordered_map<std::string, nl::CellId> &signals,
              Unroller::Options options, unsigned bound,
              const PropertyFn &prop, const SolveLimits &limits,
              const PropCtx *warm)
{
    Timer timer;
    CheckResult result;
    result.bound = bound;

    PropCtx ctx(netlist, signals, std::move(options), bound);
    if (warm)
        ctx.seedFrom(*warm);
    size_t vars_before = static_cast<size_t>(ctx.solver().numVars());
    size_t clauses_before =
        static_cast<size_t>(ctx.solver().numClauses());
    Lit bad = prop(ctx);
    ctx.solver().addClause(bad);
    applyLimits(ctx.solver(), limits);

    sat::Result r = ctx.solver().solve();
    result.seconds = timer.seconds();
    result.conflicts = ctx.solver().stats().conflicts;
    result.propagations = ctx.solver().stats().propagations;
    result.inprocessRuns = ctx.solver().stats().simplifyRuns;
    result.inprocessClausesRemoved =
        ctx.solver().stats().simplifyClausesRemoved;
    result.cnfVars = static_cast<size_t>(ctx.solver().numVars());
    result.cnfClauses = static_cast<size_t>(ctx.solver().numClauses());
    result.cnfVarsAdded = result.cnfVars - vars_before;
    result.cnfClausesAdded = result.cnfClauses - clauses_before;

    switch (r) {
      case sat::Result::Unsat:
        result.verdict = Verdict::Proven;
        result.source = VerdictSource::Solve;
        break;
      case sat::Result::Unknown:
        result.verdict = Verdict::Unknown;
        result.source = sourceFromStop(ctx.solver().stopReason());
        break;
      case sat::Result::Sat:
        result.verdict = Verdict::Refuted;
        result.source = VerdictSource::Solve;
        result.trace = extractTrace(ctx);
        break;
    }
    return result;
}

InductiveResult
checkInductive(const nl::Netlist &netlist,
               const std::unordered_map<std::string, nl::CellId> &signals,
               Unroller::Options options, unsigned k,
               unsigned base_bound, const FramePropertyFn &prop,
               int64_t conflict_budget)
{
    SolveLimits limits;
    limits.conflicts = conflict_budget;
    return checkInductive(netlist, signals, std::move(options), k,
                          base_bound, prop, limits);
}

InductiveResult
checkInductive(const nl::Netlist &netlist,
               const std::unordered_map<std::string, nl::CellId> &signals,
               Unroller::Options options, unsigned k,
               unsigned base_bound, const FramePropertyFn &prop,
               const SolveLimits &limits)
{
    Timer timer;
    InductiveResult result;
    result.k = k;
    R2U_ASSERT(k >= 1 && base_bound >= k, "bad induction parameters");

    // The limits are a total across both solves: the step gets
    // whatever the base case left over.
    auto remaining = [&](uint64_t spent_conflicts,
                         uint64_t spent_propagations) {
        SolveLimits rem = limits;
        if (rem.conflicts >= 0) {
            rem.conflicts -= static_cast<int64_t>(spent_conflicts);
            if (rem.conflicts < 0)
                rem.conflicts = 0;
        }
        if (rem.propagations >= 0) {
            rem.propagations -=
                static_cast<int64_t>(spent_propagations);
            if (rem.propagations < 0)
                rem.propagations = 0;
        }
        if (rem.seconds >= 0) {
            rem.seconds -= timer.seconds();
            if (rem.seconds < 0)
                rem.seconds = 0;
        }
        return rem;
    };

    // --- base case: BMC from the initial state ---
    {
        Unroller::Options base_opts = options;
        base_opts.concreteInit = true;
        PropCtx ctx(netlist, signals, base_opts, base_bound);
        Lit bad = ctx.cnf().falseLit();
        for (unsigned f = 0; f < base_bound; f++)
            bad = ctx.cnf().mkOr(bad, prop(ctx, f));
        ctx.solver().addClause(bad);
        applyLimits(ctx.solver(), limits);
        sat::Result r = ctx.solver().solve();
        result.conflicts = ctx.solver().stats().conflicts;
        result.propagations = ctx.solver().stats().propagations;
        if (r == sat::Result::Sat) {
            result.verdict = Verdict::Refuted;
            result.trace = extractTrace(ctx);
            result.seconds = timer.seconds();
            return result;
        }
        if (r == sat::Result::Unknown) {
            result.source = sourceFromStop(ctx.solver().stopReason());
            result.seconds = timer.seconds();
            return result;
        }
        result.baseProven = true;
    }

    // --- induction step: arbitrary start state ---
    {
        Unroller::Options step_opts = options;
        step_opts.concreteInit = false;
        PropCtx ctx(netlist, signals, step_opts, k + 1);
        for (unsigned f = 0; f < k; f++)
            ctx.assume(~prop(ctx, f));
        ctx.solver().addClause(prop(ctx, k));
        applyLimits(ctx.solver(),
                    remaining(result.conflicts, result.propagations));
        sat::Result r = ctx.solver().solve();
        result.conflicts += ctx.solver().stats().conflicts;
        result.propagations += ctx.solver().stats().propagations;
        if (r == sat::Result::Unsat) {
            result.verdict = Verdict::Proven;
            result.inductive = true;
        } else {
            // Base case held up to the bound but the step failed (or
            // budget ran out): inconclusive.
            result.verdict = Verdict::Unknown;
            if (r == sat::Result::Unknown)
                result.source =
                    sourceFromStop(ctx.solver().stopReason());
        }
    }
    result.seconds = timer.seconds();
    return result;
}

} // namespace r2u::bmc
