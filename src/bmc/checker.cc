#include "bmc/checker.hh"

#include "common/logging.hh"
#include "common/timer.hh"

namespace r2u::bmc
{

using sat::Lit;
using sat::Word;

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Proven: return "proven";
      case Verdict::Refuted: return "cex";
      case Verdict::Unknown: return "undetermined";
    }
    return "?";
}

const char *
verdictSourceName(VerdictSource source)
{
    switch (source) {
      case VerdictSource::Solve: return "solve";
      case VerdictSource::Retry: return "retry";
      case VerdictSource::ConflictBudget: return "conflict-budget";
      case VerdictSource::PropagationBudget:
        return "propagation-budget";
      case VerdictSource::QueryDeadline: return "query-deadline";
      case VerdictSource::TotalDeadline: return "total-deadline";
      case VerdictSource::Cancelled: return "cancelled";
      case VerdictSource::Interrupted: return "interrupted";
    }
    return "?";
}

void
applyLimits(sat::Solver &solver, const SolveLimits &limits)
{
    solver.setConflictBudget(limits.conflicts);
    solver.setPropagationBudget(limits.propagations);
    solver.setDeadline(limits.seconds);
    solver.setExternalInterrupt(limits.cancel);
}

VerdictSource
sourceFromStop(sat::StopReason reason)
{
    switch (reason) {
      case sat::StopReason::None: return VerdictSource::Solve;
      case sat::StopReason::ConflictBudget:
        return VerdictSource::ConflictBudget;
      case sat::StopReason::PropagationBudget:
        return VerdictSource::PropagationBudget;
      case sat::StopReason::Deadline:
        return VerdictSource::QueryDeadline;
      case sat::StopReason::Interrupt:
        return VerdictSource::Interrupted;
    }
    return VerdictSource::Solve;
}

std::string
Trace::toString() const
{
    std::string out;
    for (size_t f = 0; f < steps.size(); f++) {
        out += strfmt("cycle %zu:\n", f);
        for (const auto &[name, value] : steps[f].signals) {
            out += strfmt("  %-40s = 0x%s\n", name.c_str(),
                          value.toHexString().c_str());
        }
    }
    return out;
}

PropCtx::PropCtx(const nl::Netlist &netlist,
                 const std::unordered_map<std::string, nl::CellId> &signals,
                 Unroller::Options options, unsigned bound)
    : signals_(signals), cnf_(solver_),
      unroller_(netlist, cnf_, std::move(options)), bound_(bound)
{
    unroller_.ensureFrames(bound);
}

nl::CellId
PropCtx::cellOf(const std::string &name) const
{
    auto it = signals_.find(name);
    if (it == signals_.end())
        fatal("property references unknown signal '%s'", name.c_str());
    return it->second;
}

const Word &
PropCtx::at(unsigned frame, const std::string &name)
{
    R2U_ASSERT(frame < bound_, "frame %u beyond bound %u", frame, bound_);
    return unroller_.wire(frame, cellOf(name));
}

const Word &
PropCtx::rigid(const std::string &name, unsigned width)
{
    auto it = rigids_.find(name);
    if (it != rigids_.end()) {
        R2U_ASSERT(it->second.size() == width,
                   "rigid '%s' width mismatch", name.c_str());
        return it->second;
    }
    auto [it2, ok] = rigids_.emplace(name, cnf_.freshWord(width));
    (void)ok;
    return it2->second;
}

void
PropCtx::beginQuery()
{
    R2U_ASSERT(!in_query_, "beginQuery inside an active query");
    rigids_.clear();
    watched_.clear();
    act_ = cnf_.freshLit();
    in_query_ = true;
}

void
PropCtx::endQuery()
{
    R2U_ASSERT(in_query_, "endQuery without beginQuery");
    in_query_ = false;
    solver_.addClause(~act_);
    act_ = sat::kLitUndef;
}

void
PropCtx::assume(Lit a)
{
    if (in_query_)
        solver_.addClause(~act_, a);
    else
        solver_.addClause(a);
}

void
PropCtx::pinInput(const std::string &name, uint64_t value)
{
    for (unsigned f = 0; f < bound_; f++)
        pinInputAt(f, name, value);
}

void
PropCtx::pinInputAt(unsigned frame, const std::string &name,
                    uint64_t value)
{
    const Word &w = at(frame, name);
    assume(cnf_.mkEqW(
        w, cnf_.constWord(static_cast<unsigned>(w.size()), value)));
}

void
PropCtx::watch(const std::string &name)
{
    for (const auto &existing : watched_)
        if (existing == name)
            return;
    watched_.push_back(name);
    // Trace extraction reads these wires after the solve; with
    // demand-driven unrolling their cones must be in the CNF before
    // solving, or wireValue would mint variables the model does not
    // cover. Demanding here (not at extract time) keeps watch()
    // the only contract a property needs.
    nl::CellId cell = cellOf(name);
    for (unsigned f = 0; f < bound_; f++)
        unroller_.wire(f, cell);
}

Lit
PropCtx::eqConst(unsigned frame, const std::string &name, uint64_t value)
{
    const Word &w = at(frame, name);
    return cnf_.mkEqW(
        w, cnf_.constWord(static_cast<unsigned>(w.size()), value));
}

Lit
PropCtx::eqRigid(unsigned frame, const std::string &name, const Word &r)
{
    return cnf_.mkEqW(at(frame, name), r);
}

Lit
PropCtx::changedAt(unsigned frame, const std::string &name)
{
    R2U_ASSERT(frame >= 1, "changedAt needs a previous frame");
    return ~cnf_.mkEqW(at(frame, name), at(frame - 1, name));
}

Trace
extractTrace(PropCtx &ctx)
{
    Trace trace;
    for (unsigned f = 0; f < ctx.bound(); f++) {
        TraceStep step;
        for (const auto &name : ctx.watched()) {
            step.signals[name] =
                ctx.unroller().wireValue(f, ctx.cellOf(name));
        }
        trace.steps.push_back(std::move(step));
    }
    return trace;
}

CheckResult
checkProperty(const nl::Netlist &netlist,
              const std::unordered_map<std::string, nl::CellId> &signals,
              Unroller::Options options, unsigned bound,
              const PropertyFn &prop, int64_t conflict_budget)
{
    SolveLimits limits;
    limits.conflicts = conflict_budget;
    return checkProperty(netlist, signals, std::move(options), bound,
                         prop, limits);
}

CheckResult
checkProperty(const nl::Netlist &netlist,
              const std::unordered_map<std::string, nl::CellId> &signals,
              Unroller::Options options, unsigned bound,
              const PropertyFn &prop, const SolveLimits &limits)
{
    Timer timer;
    CheckResult result;
    result.bound = bound;

    PropCtx ctx(netlist, signals, std::move(options), bound);
    size_t vars_before = static_cast<size_t>(ctx.solver().numVars());
    size_t clauses_before =
        static_cast<size_t>(ctx.solver().numClauses());
    Lit bad = prop(ctx);
    ctx.solver().addClause(bad);
    applyLimits(ctx.solver(), limits);

    sat::Result r = ctx.solver().solve();
    result.seconds = timer.seconds();
    result.conflicts = ctx.solver().stats().conflicts;
    result.propagations = ctx.solver().stats().propagations;
    result.cnfVars = static_cast<size_t>(ctx.solver().numVars());
    result.cnfClauses = static_cast<size_t>(ctx.solver().numClauses());
    result.cnfVarsAdded = result.cnfVars - vars_before;
    result.cnfClausesAdded = result.cnfClauses - clauses_before;

    switch (r) {
      case sat::Result::Unsat:
        result.verdict = Verdict::Proven;
        result.source = VerdictSource::Solve;
        break;
      case sat::Result::Unknown:
        result.verdict = Verdict::Unknown;
        result.source = sourceFromStop(ctx.solver().stopReason());
        break;
      case sat::Result::Sat:
        result.verdict = Verdict::Refuted;
        result.source = VerdictSource::Solve;
        result.trace = extractTrace(ctx);
        break;
    }
    return result;
}

InductiveResult
checkInductive(const nl::Netlist &netlist,
               const std::unordered_map<std::string, nl::CellId> &signals,
               Unroller::Options options, unsigned k,
               unsigned base_bound, const FramePropertyFn &prop,
               int64_t conflict_budget)
{
    Timer timer;
    InductiveResult result;
    result.k = k;
    R2U_ASSERT(k >= 1 && base_bound >= k, "bad induction parameters");

    // --- base case: BMC from the initial state ---
    {
        Unroller::Options base_opts = options;
        base_opts.concreteInit = true;
        PropCtx ctx(netlist, signals, base_opts, base_bound);
        Lit bad = ctx.cnf().falseLit();
        for (unsigned f = 0; f < base_bound; f++)
            bad = ctx.cnf().mkOr(bad, prop(ctx, f));
        ctx.solver().addClause(bad);
        ctx.solver().setConflictBudget(conflict_budget);
        sat::Result r = ctx.solver().solve();
        if (r == sat::Result::Sat) {
            result.verdict = Verdict::Refuted;
            result.trace = extractTrace(ctx);
            result.seconds = timer.seconds();
            return result;
        }
        if (r == sat::Result::Unknown) {
            result.seconds = timer.seconds();
            return result;
        }
    }

    // --- induction step: arbitrary start state ---
    {
        Unroller::Options step_opts = options;
        step_opts.concreteInit = false;
        PropCtx ctx(netlist, signals, step_opts, k + 1);
        for (unsigned f = 0; f < k; f++)
            ctx.assume(~prop(ctx, f));
        ctx.solver().addClause(prop(ctx, k));
        ctx.solver().setConflictBudget(conflict_budget);
        sat::Result r = ctx.solver().solve();
        if (r == sat::Result::Unsat) {
            result.verdict = Verdict::Proven;
            result.inductive = true;
        } else {
            // Base case held up to the bound but the step failed (or
            // budget ran out): inconclusive.
            result.verdict = Verdict::Unknown;
        }
    }
    result.seconds = timer.seconds();
    return result;
}

} // namespace r2u::bmc
