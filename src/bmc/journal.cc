#include "bmc/journal.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/logging.hh"

namespace r2u::bmc
{

namespace
{

constexpr char kMagic[4] = {'R', '2', 'U', 'J'};
// v2: journalKey() mixes the query content hash — v1 keys from the
// count-only configHash() era must not answer v2 lookups.
// v3: payload grows a u64 baseKey after key, and flags bit1 records
// proof generality (unbounded) — v2 records cannot express either, so
// they must not answer v3 lookups.
constexpr uint32_t kVersion = 3;
constexpr char kCacheMagic[4] = {'R', '2', 'U', 'C'};
// cache v2: same baseKey/unbounded payload growth as journal v3.
constexpr uint32_t kCacheVersion = 2;
constexpr size_t kCacheHeaderSize = 4 + sizeof(uint32_t);
constexpr size_t kHeaderSize = 4 + sizeof(uint32_t) + sizeof(uint64_t);
/** payload bytes before the variable-length name */
constexpr size_t kFixedPayload = 8 + 8 + 4 + 4 + 4 + 8 + 8 + 8 + 4;
constexpr uint8_t kFlagValidated = 0x01;
constexpr uint8_t kFlagUnbounded = 0x02;

uint64_t
fnv1a(const uint8_t *data, size_t n, uint64_t h = 14695981039346656037ull)
{
    for (size_t i = 0; i < n; i++) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

template <typename T>
void
put(std::vector<uint8_t> &buf, T v)
{
    uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf.insert(buf.end(), raw, raw + sizeof(T));
}

template <typename T>
T
get(const uint8_t *&p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
}

bool
writeAll(int fd, const uint8_t *data, size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/**
 * writeAll() with the torn-write fault seam applied: when the hook
 * fires (returns >= 0) only that prefix of the frame reaches disk and
 * the write reports failure, exactly like a crash or ENOSPC mid-frame.
 */
bool
faultyWrite(int fd, const uint8_t *data, size_t n,
            const std::function<ssize_t(size_t)> &fault)
{
    if (fault) {
        ssize_t cut = fault(n);
        if (cut >= 0) {
            size_t keep = std::min(static_cast<size_t>(cut), n);
            if (keep > 0)
                writeAll(fd, data, keep);
            errno = EIO;
            return false;
        }
    }
    return writeAll(fd, data, n);
}

std::vector<uint8_t>
encodePayload(const Journal::Record &rec)
{
    std::vector<uint8_t> p;
    p.reserve(kFixedPayload + rec.name.size());
    put<uint64_t>(p, rec.key);
    put<uint64_t>(p, rec.baseKey);
    put<uint8_t>(p, static_cast<uint8_t>(rec.verdict));
    put<uint8_t>(p, static_cast<uint8_t>(rec.source));
    put<uint8_t>(p, (rec.validated ? kFlagValidated : 0) |
                        (rec.unbounded ? kFlagUnbounded : 0));
    put<uint8_t>(p, 0); // pad
    put<uint32_t>(p, rec.bound);
    put<uint32_t>(p, rec.retries);
    put<double>(p, rec.seconds);
    put<uint64_t>(p, rec.conflicts);
    put<uint64_t>(p, rec.propagations);
    put<uint32_t>(p, static_cast<uint32_t>(rec.name.size()));
    p.insert(p.end(), rec.name.begin(), rec.name.end());
    return p;
}

bool
decodePayload(const uint8_t *data, size_t n, Journal::Record &rec)
{
    if (n < kFixedPayload)
        return false;
    const uint8_t *p = data;
    rec.key = get<uint64_t>(p);
    rec.baseKey = get<uint64_t>(p);
    uint8_t verdict = get<uint8_t>(p);
    uint8_t source = get<uint8_t>(p);
    uint8_t flags = get<uint8_t>(p);
    get<uint8_t>(p); // pad
    rec.bound = get<uint32_t>(p);
    rec.retries = get<uint32_t>(p);
    rec.seconds = get<double>(p);
    rec.conflicts = get<uint64_t>(p);
    rec.propagations = get<uint64_t>(p);
    uint32_t name_len = get<uint32_t>(p);
    if (verdict > static_cast<uint8_t>(Verdict::Unknown) ||
        source > static_cast<uint8_t>(VerdictSource::Race))
        return false;
    if (n != kFixedPayload + name_len)
        return false;
    rec.verdict = static_cast<Verdict>(verdict);
    rec.source = static_cast<VerdictSource>(source);
    rec.validated = (flags & kFlagValidated) != 0;
    rec.unbounded = (flags & kFlagUnbounded) != 0;
    rec.name.assign(reinterpret_cast<const char *>(p), name_len);
    return true;
}

} // namespace

uint64_t
journalKey(const std::string &name, unsigned bound,
           uint64_t content_hash)
{
    uint64_t h = fnv1a(
        reinterpret_cast<const uint8_t *>(name.data()), name.size());
    uint32_t b = bound;
    h = fnv1a(reinterpret_cast<const uint8_t *>(&b), sizeof(b), h);
    return fnv1a(reinterpret_cast<const uint8_t *>(&content_hash),
                 sizeof(content_hash), h);
}

uint64_t
journalBaseKey(const std::string &name, uint64_t base_hash)
{
    if (base_hash == 0)
        return 0;
    uint64_t h = fnv1a(
        reinterpret_cast<const uint8_t *>(name.data()), name.size());
    return fnv1a(reinterpret_cast<const uint8_t *>(&base_hash),
                 sizeof(base_hash), h);
}

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (lock_fd_ >= 0)
        ::close(lock_fd_); // releases the openShared() flock
}

void
Journal::open(const std::string &path, uint64_t config_hash,
              bool resume)
{
    R2U_ASSERT(fd_ < 0, "journal already open");
    path_ = path;

    if (resume) {
        // Load whatever survives; stop at the first record that does
        // not parse or whose checksum disagrees — everything after a
        // torn write is suspect by construction (appends are ordered).
        int rfd = ::open(path.c_str(), O_RDONLY);
        off_t good = 0;
        if (rfd >= 0) {
            std::vector<uint8_t> file;
            uint8_t chunk[1 << 16];
            ssize_t n;
            while ((n = ::read(rfd, chunk, sizeof(chunk))) > 0)
                file.insert(file.end(), chunk, chunk + n);
            ::close(rfd);

            if (file.size() >= kHeaderSize) {
                const uint8_t *p = file.data();
                if (std::memcmp(p, kMagic, 4) != 0)
                    fatal("journal %s: bad magic", path.c_str());
                p += 4;
                uint32_t version = get<uint32_t>(p);
                if (version != kVersion)
                    fatal("journal %s: version %u (expected %u)",
                          path.c_str(), version, kVersion);
                uint64_t hash = get<uint64_t>(p);
                if (hash != config_hash)
                    fatal("journal %s: config hash mismatch "
                          "(%llx vs %llx) — produced by a different "
                          "design/bound/unroll configuration",
                          path.c_str(),
                          static_cast<unsigned long long>(hash),
                          static_cast<unsigned long long>(config_hash));
                good = static_cast<off_t>(kHeaderSize);
                size_t off = kHeaderSize;
                while (off + sizeof(uint32_t) + sizeof(uint64_t) <=
                       file.size()) {
                    const uint8_t *rp = file.data() + off;
                    uint32_t len = get<uint32_t>(rp);
                    uint64_t sum = get<uint64_t>(rp);
                    size_t total =
                        sizeof(uint32_t) + sizeof(uint64_t) + len;
                    if (off + total > file.size())
                        break; // truncated tail
                    if (fnv1a(rp, len) != sum)
                        break; // corrupt record; drop it and the rest
                    Record rec;
                    if (!decodePayload(rp, len, rec))
                        break;
                    Record &slot = loaded_[rec.key];
                    slot = std::move(rec);
                    if (slot.unbounded && slot.baseKey != 0 &&
                        slot.verdict == Verdict::Proven)
                        by_base_[slot.baseKey] = &slot;
                    off += total;
                    good = static_cast<off_t>(off);
                }
                if (good != static_cast<off_t>(file.size()))
                    warn("journal %s: dropping %zu torn/corrupt tail "
                         "bytes (%zu valid records)",
                         path.c_str(),
                         file.size() - static_cast<size_t>(good),
                         loaded_.size());
            } else if (!file.empty()) {
                fatal("journal %s: shorter than its header",
                      path.c_str());
            }
        }
        fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
        if (fd_ < 0)
            fatal("journal %s: open failed: %s", path.c_str(),
                  strerror(errno));
        if (good > 0) {
            if (::ftruncate(fd_, good) != 0)
                fatal("journal %s: truncate failed: %s", path.c_str(),
                      strerror(errno));
            if (::lseek(fd_, good, SEEK_SET) < 0)
                fatal("journal %s: seek failed: %s", path.c_str(),
                      strerror(errno));
            end_ = good;
            return;
        }
        // Empty or absent file: fall through to write a fresh header.
        if (::ftruncate(fd_, 0) != 0)
            fatal("journal %s: truncate failed: %s", path.c_str(),
                  strerror(errno));
    } else {
        fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd_ < 0)
            fatal("journal %s: open failed: %s", path.c_str(),
                  strerror(errno));
    }

    std::vector<uint8_t> hdr;
    hdr.insert(hdr.end(), kMagic, kMagic + 4);
    put<uint32_t>(hdr, kVersion);
    put<uint64_t>(hdr, config_hash);
    if (!writeAll(fd_, hdr.data(), hdr.size()) || ::fsync(fd_) != 0)
        fatal("journal %s: header write failed: %s", path.c_str(),
              strerror(errno));
    end_ = static_cast<off_t>(hdr.size());
}

bool
Journal::openShared(const std::string &path, uint64_t config_hash)
{
    R2U_ASSERT(fd_ < 0, "journal already open");
    int lfd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (lfd < 0) {
        warn("journal %s: open failed: %s — running without a journal",
             path.c_str(), strerror(errno));
        return false;
    }
    if (::flock(lfd, LOCK_EX | LOCK_NB) != 0) {
        warn("journal %s: another process holds the write lock — "
             "running without a journal",
             path.c_str());
        ::close(lfd);
        return false;
    }
    // The flock lives on this description; keep it open so the lock
    // outlives the separate write fd open() creates below.
    lock_fd_ = lfd;
    open(path, config_hash, /*resume=*/true);
    return true;
}

void
Journal::setWriteFault(std::function<ssize_t(size_t)> hook)
{
    std::lock_guard<std::mutex> lock(mu_);
    write_fault_ = std::move(hook);
}

const Journal::Record *
Journal::lookup(uint64_t key) const
{
    auto it = loaded_.find(key);
    return it == loaded_.end() ? nullptr : &it->second;
}

const Journal::Record *
Journal::lookupUnbounded(uint64_t base_key) const
{
    if (base_key == 0)
        return nullptr;
    auto it = by_base_.find(base_key);
    if (it == by_base_.end())
        return nullptr;
    // A later record with the same primary key may have overwritten
    // the slot this index points at; only serve it if it still is the
    // unbounded proof it was indexed as.
    const Record *rec = it->second;
    if (!rec->unbounded || rec->verdict != Verdict::Proven ||
        rec->baseKey != base_key)
        return nullptr;
    return rec;
}

bool
Journal::append(const Record &rec)
{
    std::vector<uint8_t> payload = encodePayload(rec);
    std::vector<uint8_t> frame;
    frame.reserve(sizeof(uint32_t) + sizeof(uint64_t) + payload.size());
    put<uint32_t>(frame, static_cast<uint32_t>(payload.size()));
    put<uint64_t>(frame, fnv1a(payload.data(), payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());

    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0 || disabled_)
        return false;
    if (!faultyWrite(fd_, frame.data(), frame.size(), write_fault_) ||
        ::fsync(fd_) != 0) {
        int saved = errno;
        // A partial frame at end_ would silently poison every record
        // appended after it (the loader stops at the first bad frame),
        // so roll the file back to the last durable offset and stop
        // journaling: ENOSPC/EIO do not heal mid-run, and a quiet
        // best-effort append is exactly how stores get corrupted.
        bool repaired = ::ftruncate(fd_, end_) == 0 &&
                        ::lseek(fd_, end_, SEEK_SET) >= 0;
        disabled_ = true;
        warn("journal %s: append FAILED (%s)%s — journaling DISABLED "
             "for the rest of this run",
             path_.c_str(), strerror(saved),
             repaired ? ", partial frame rolled back"
                      : ", and rollback also failed (the torn tail "
                        "will be dropped on the next resume)");
        return false;
    }
    end_ += static_cast<off_t>(frame.size());
    appended_++;
    return true;
}

VerdictCache::~VerdictCache()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
VerdictCache::open(const std::string &dir)
{
    R2U_ASSERT(fd_ < 0, "verdict cache already open");

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cache %s: cannot create directory: %s", dir.c_str(),
              ec.message().c_str());
    path_ = (std::filesystem::path(dir) / "verdicts.r2uc").string();

    // Single-writer protection: take an exclusive flock() BEFORE
    // reading or truncating anything. A second opener of the same
    // --cache DIR (daemon + CLI, or two CLIs) degrades to read-only:
    // lookups still work, append() becomes a no-op, and it can never
    // interleave frames into — or truncate the tail of — the live
    // writer's file.
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0)
        fatal("cache %s: open failed: %s", path_.c_str(),
              strerror(errno));
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
        warn("cache %s: another process holds the write lock — "
             "continuing READ-ONLY (cached verdicts are served, new "
             "ones are not stored)",
             path_.c_str());
        ::close(fd_);
        fd_ = ::open(path_.c_str(), O_RDONLY);
        if (fd_ < 0)
            fatal("cache %s: reopen failed: %s", path_.c_str(),
                  strerror(errno));
        read_only_ = true;
    }

    // Load whatever is trustworthy. Unlike the journal, nothing here
    // is fatal short of I/O failure: a cache that cannot be believed
    // is simply started fresh — the cost is re-solving, never a wrong
    // answer, and aborting a run over a scratch directory would invert
    // that tradeoff.
    off_t good = 0;
    bool fresh = true;
    int rfd = ::open(path_.c_str(), O_RDONLY);
    if (rfd >= 0) {
        std::vector<uint8_t> file;
        uint8_t chunk[1 << 16];
        ssize_t n;
        while ((n = ::read(rfd, chunk, sizeof(chunk))) > 0)
            file.insert(file.end(), chunk, chunk + n);
        ::close(rfd);

        if (file.size() >= kCacheHeaderSize) {
            const uint8_t *p = file.data();
            uint32_t version = 0;
            if (std::memcmp(p, kCacheMagic, 4) == 0) {
                p += 4;
                version = get<uint32_t>(p);
            }
            if (version != kCacheVersion) {
                warn("cache %s: unrecognized header — starting fresh",
                     path_.c_str());
            } else {
                fresh = false;
                good = static_cast<off_t>(kCacheHeaderSize);
                size_t off = kCacheHeaderSize;
                while (off + sizeof(uint32_t) + sizeof(uint64_t) <=
                       file.size()) {
                    const uint8_t *rp = file.data() + off;
                    uint32_t len = get<uint32_t>(rp);
                    uint64_t sum = get<uint64_t>(rp);
                    size_t total =
                        sizeof(uint32_t) + sizeof(uint64_t) + len;
                    if (off + total > file.size())
                        break; // truncated tail
                    if (fnv1a(rp, len) != sum)
                        break; // corrupt; drop it and the rest
                    Journal::Record rec;
                    if (!decodePayload(rp, len, rec))
                        break;
                    by_name_[rec.name].emplace_back(rec.bound,
                                                    rec.key);
                    Journal::Record &slot = loaded_[rec.key];
                    slot = std::move(rec); // last wins
                    if (slot.unbounded && slot.baseKey != 0 &&
                        slot.verdict == Verdict::Proven)
                        by_base_[slot.baseKey] = &slot;
                    off += total;
                    good = static_cast<off_t>(off);
                }
                if (good != static_cast<off_t>(file.size()))
                    warn("cache %s: dropping %zu torn/corrupt tail "
                         "bytes (%zu valid records)",
                         path_.c_str(),
                         file.size() - static_cast<size_t>(good),
                         loaded_.size());
            }
        } else if (!file.empty()) {
            warn("cache %s: shorter than its header — starting fresh",
                 path_.c_str());
        }
    }

    // A read-only opener only drops the torn tail *in memory* — the
    // bytes belong to whoever holds the write lock.
    if (read_only_)
        return;

    if (!fresh) {
        if (::ftruncate(fd_, good) != 0 ||
            ::lseek(fd_, good, SEEK_SET) < 0)
            fatal("cache %s: truncate failed: %s", path_.c_str(),
                  strerror(errno));
        end_ = good;
        return;
    }

    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0)
        fatal("cache %s: truncate failed: %s", path_.c_str(),
              strerror(errno));
    std::vector<uint8_t> hdr;
    hdr.insert(hdr.end(), kCacheMagic, kCacheMagic + 4);
    put<uint32_t>(hdr, kCacheVersion);
    if (!writeAll(fd_, hdr.data(), hdr.size()) || ::fsync(fd_) != 0)
        fatal("cache %s: header write failed: %s", path_.c_str(),
              strerror(errno));
    end_ = static_cast<off_t>(hdr.size());
}

void
VerdictCache::setWriteFault(std::function<ssize_t(size_t)> hook)
{
    std::lock_guard<std::mutex> lock(mu_);
    write_fault_ = std::move(hook);
}

size_t
VerdictCache::numLoaded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return loaded_.size();
}

const Journal::Record *
VerdictCache::lookup(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = loaded_.find(key);
    return it == loaded_.end() ? nullptr : &it->second;
}

const Journal::Record *
VerdictCache::lookupUnbounded(uint64_t base_key) const
{
    if (base_key == 0)
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_base_.find(base_key);
    if (it == by_base_.end())
        return nullptr;
    // Same aliasing guard as Journal::lookupUnbounded: the slot may
    // have been overwritten by a same-key record since it was indexed.
    const Journal::Record *rec = it->second;
    if (!rec->unbounded || rec->verdict != Verdict::Proven ||
        rec->baseKey != base_key)
        return nullptr;
    return rec;
}

bool
VerdictCache::hasStaleEntry(const std::string &name, unsigned bound,
                            uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        return false;
    for (const auto &[b, k] : it->second)
        if (b == bound && k != key)
            return true;
    return false;
}

bool
VerdictCache::append(const Journal::Record &rec)
{
    std::vector<uint8_t> payload = encodePayload(rec);
    std::vector<uint8_t> frame;
    frame.reserve(sizeof(uint32_t) + sizeof(uint64_t) + payload.size());
    put<uint32_t>(frame, static_cast<uint32_t>(payload.size()));
    put<uint64_t>(frame, fnv1a(payload.data(), payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());

    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0 || read_only_ || disabled_)
        return false;
    if (loaded_.count(rec.key))
        return true; // already durable; a warm run must not grow us
    if (!faultyWrite(fd_, frame.data(), frame.size(), write_fault_) ||
        ::fsync(fd_) != 0) {
        int saved = errno;
        // Same policy as Journal::append: roll back the partial frame
        // so the store stays loadable, then stop caching for the run
        // rather than retry into a failing disk.
        bool repaired = ::ftruncate(fd_, end_) == 0 &&
                        ::lseek(fd_, end_, SEEK_SET) >= 0;
        disabled_ = true;
        warn("cache %s: append FAILED (%s)%s — caching DISABLED for "
             "the rest of this run",
             path_.c_str(), strerror(saved),
             repaired ? ", partial frame rolled back"
                      : ", and rollback also failed (the torn tail "
                        "will be dropped on the next load)");
        return false;
    }
    end_ += static_cast<off_t>(frame.size());
    by_name_[rec.name].emplace_back(rec.bound, rec.key);
    Journal::Record &slot = loaded_[rec.key];
    slot = rec;
    if (slot.unbounded && slot.baseKey != 0 &&
        slot.verdict == Verdict::Proven)
        by_base_[slot.baseKey] = &slot;
    appended_++;
    return true;
}

size_t
VerdictCache::numAppended() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return appended_;
}

} // namespace r2u::bmc
