#include "bmc/validate.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/timer.hh"
#include "sim/simulator.hh"
#include "sim/vcd.hh"

namespace r2u::bmc
{

namespace
{

/** Resolve a watched name: design signal map first (SVA-visible
 *  aliases), then raw netlist names. kNoCell if neither knows it. */
nl::CellId
resolveSignal(const nl::Netlist &nl,
              const std::unordered_map<std::string, nl::CellId> &signals,
              const std::string &name)
{
    auto it = signals.find(name);
    if (it != signals.end())
        return it->second;
    return nl.findByName(name);
}

/** Parse a TraceStep::memReads key ("memname#port"). */
bool
parseMemReadKey(const std::string &key, std::string &mem_name,
                size_t &port)
{
    size_t hash = key.rfind('#');
    if (hash == std::string::npos || hash + 1 >= key.size())
        return false;
    mem_name = key.substr(0, hash);
    try {
        port = std::stoul(key.substr(hash + 1));
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

ReplayResult
replayTrace(const nl::Netlist &netlist,
            const std::unordered_map<std::string, nl::CellId> &signals,
            const Unroller::Options &options, unsigned bound,
            const PropertyFn &prop, const Trace &trace,
            const std::string &vcd_path)
{
    Timer timer;
    ReplayResult res;

    if (trace.steps.size() != bound) {
        res.note = strfmt("trace has %zu steps but bound is %u",
                          trace.steps.size(), bound);
        res.seconds = timer.seconds();
        return res;
    }

    // --- part 1: concrete replay through the reference simulator ---
    sim::Simulator sim(netlist);
    sim.reset();

    // Initial state: memInit overrides first (the BMC side saw them as
    // constants), then the model's symbolic-initial-state choices from
    // the trace (which subsume any overridden words they cover).
    for (const auto &[mem, words] : options.memInit) {
        const nl::Memory &m = netlist.memory(mem);
        for (unsigned a = 0; a < m.depth && a < words.size(); a++)
            sim.pokeMem(mem, a, words[a]);
    }
    for (const auto &[mem_name, words] : trace.initMems) {
        nl::MemId mem = netlist.findMemoryByName(mem_name);
        if (mem < 0) {
            res.note = strfmt("trace initMems names unknown memory "
                              "'%s'", mem_name.c_str());
            res.seconds = timer.seconds();
            return res;
        }
        const nl::Memory &m = netlist.memory(mem);
        for (unsigned a = 0; a < m.depth && a < words.size(); a++)
            sim.pokeMem(mem, a, words[a]);
    }
    for (const auto &[reg_name, bits] : trace.initRegs) {
        nl::CellId d = netlist.findByName(reg_name);
        if (d == nl::kNoCell) {
            res.note = strfmt("trace initRegs names unknown register "
                              "'%s'", reg_name.c_str());
            res.seconds = timer.seconds();
            return res;
        }
        sim.pokeDff(d, bits);
    }

    // Optional waveform: watched signals, watched memory-port reads,
    // and every input the trace drives, deduplicated.
    std::vector<nl::CellId> vcd_cells;
    auto addVcdCell = [&](nl::CellId id) {
        if (id == nl::kNoCell)
            return;
        if (std::find(vcd_cells.begin(), vcd_cells.end(), id) ==
            vcd_cells.end())
            vcd_cells.push_back(id);
    };
    if (!vcd_path.empty()) {
        for (const auto &step : trace.steps) {
            for (const auto &[name, bits] : step.signals)
                addVcdCell(resolveSignal(netlist, signals, name));
            for (const auto &[key, bits] : step.memReads) {
                std::string mem_name;
                size_t port = 0;
                if (!parseMemReadKey(key, mem_name, port))
                    continue;
                nl::MemId mem = netlist.findMemoryByName(mem_name);
                if (mem < 0)
                    continue;
                const auto &ports = netlist.memory(mem).readPorts;
                if (port < ports.size())
                    addVcdCell(ports[port]);
            }
        }
        for (const auto &frame : trace.inputs)
            for (const auto &[name, bits] : frame)
                addVcdCell(netlist.findByName(name));
    }
    sim::VcdWriter vcd(sim, vcd_cells);

    std::string sim_note;
    unsigned sim_mismatches = 0;
    for (unsigned f = 0; f < bound; f++) {
        if (f < trace.inputs.size())
            for (const auto &[name, bits] : trace.inputs[f])
                sim.setInput(name, bits);

        const TraceStep &step = trace.steps[f];
        for (const auto &[name, bits] : step.signals) {
            nl::CellId id = resolveSignal(netlist, signals, name);
            if (id == nl::kNoCell) {
                sim_mismatches++;
                sim_note += strfmt("  frame %u: unknown signal '%s'\n",
                                   f, name.c_str());
                continue;
            }
            const Bits &got = sim.value(id);
            if (!(got == bits)) {
                sim_mismatches++;
                sim_note += strfmt(
                    "  frame %u: %s = %s in trace, %s in sim\n", f,
                    name.c_str(), bits.toHexString().c_str(),
                    got.toHexString().c_str());
            }
        }
        for (const auto &[key, bits] : step.memReads) {
            std::string mem_name;
            size_t port = 0;
            nl::CellId id = nl::kNoCell;
            if (parseMemReadKey(key, mem_name, port)) {
                nl::MemId mem = netlist.findMemoryByName(mem_name);
                if (mem >= 0 &&
                    port < netlist.memory(mem).readPorts.size())
                    id = netlist.memory(mem).readPorts[port];
            }
            if (id == nl::kNoCell) {
                sim_mismatches++;
                sim_note += strfmt(
                    "  frame %u: unresolvable mem read '%s'\n", f,
                    key.c_str());
                continue;
            }
            const Bits &got = sim.value(id);
            if (!(got == bits)) {
                sim_mismatches++;
                sim_note += strfmt(
                    "  frame %u: %s = %s in trace, %s in sim\n", f,
                    key.c_str(), bits.toHexString().c_str(),
                    got.toHexString().c_str());
            }
        }
        if (!vcd_path.empty())
            vcd.sample();
        sim.step();
    }
    res.simOk = sim_mismatches == 0;
    if (!res.simOk)
        res.note += strfmt("simulator replay: %u mismatched values\n",
                           sim_mismatches) + sim_note;

    if (!vcd_path.empty())
        vcd.writeTo(vcd_path);

    // --- part 2: monitor re-check in a fresh pinned context ---
    // Rebuild the property from scratch (no shared CNF, no activation
    // literals) in a context whose inputs and initial state are the
    // trace's concrete values, built as *constants*: the circuit cone
    // constant-folds through the CnfBuilder, so this costs a tiny
    // fraction of the original solve. Only the monitor's own free
    // variables (rigid instruction bindings etc.) are left for the
    // solver; SAT means the concrete execution genuinely violates the
    // property.
    {
        Unroller::Options ropts = options;
        ropts.inputValues.assign(bound, {});
        for (unsigned f = 0; f < bound && f < trace.inputs.size();
             f++) {
            for (const auto &[name, bits] : trace.inputs[f]) {
                nl::CellId in = netlist.findByName(name);
                if (in != nl::kNoCell)
                    ropts.inputValues[f][in] = bits;
            }
        }
        for (const auto &[reg_name, bits] : trace.initRegs) {
            nl::CellId d = netlist.findByName(reg_name);
            if (d != nl::kNoCell)
                ropts.regInit[d] = bits;
        }
        for (const auto &[mem_name, words] : trace.initMems) {
            nl::MemId mem = netlist.findMemoryByName(mem_name);
            if (mem >= 0)
                ropts.memInit[mem] = words; // whole-array constant
        }

        PropCtx ctx(netlist, signals, std::move(ropts), bound);
        sat::Lit bad = prop(ctx);
        ctx.assume(bad);
        sat::Result r = ctx.solver().solve();
        res.monitorOk = r == sat::Result::Sat;
        if (!res.monitorOk)
            res.note += strfmt(
                "monitor re-check: violation %s under the pinned "
                "trace (cnf %lld vars, %lld clauses)\n",
                r == sat::Result::Unsat ? "UNSAT" : "inconclusive",
                static_cast<long long>(ctx.solver().numVars()),
                static_cast<long long>(ctx.solver().numClauses()));
    }

    res.ok = res.simOk && res.monitorOk;
    res.seconds = timer.seconds();
    return res;
}

} // namespace r2u::bmc
