/**
 * @file
 * Time-frame expansion of a netlist into CNF.
 *
 * The Unroller bit-blasts a synchronous netlist over k clock frames
 * through a CnfBuilder: inputs become fresh variables per frame,
 * registers follow Q' = EN ? D : Q, and memories are modeled as
 * per-frame arrays of words with read-before-write semantics matching
 * sim::Simulator. Initial state is either concrete (power-on values,
 * with selected memories made symbolic) or fully free (used by
 * induction-style reasoning).
 */

#ifndef R2U_BMC_UNROLLER_HH
#define R2U_BMC_UNROLLER_HH

#include <map>
#include <set>
#include <vector>

#include "netlist/netlist.hh"
#include "sat/cnf.hh"

namespace r2u::bmc
{

class Unroller
{
  public:
    struct Options
    {
        /** Concrete power-on state (vs fully symbolic initial state). */
        bool concreteInit = true;
        /** Memories whose initial contents are symbolic regardless. */
        std::set<nl::MemId> symbolicMems;
        /** Concrete initial contents overriding the netlist defaults. */
        std::map<nl::MemId, std::vector<Bits>> memInit;
    };

    Unroller(const nl::Netlist &netlist, sat::CnfBuilder &cnf,
             Options options);

    sat::CnfBuilder &cnf() { return cnf_; }
    const nl::Netlist &netlist() const { return nl_; }

    /** Build frames so that frames 0..n-1 exist. */
    void ensureFrames(unsigned n);

    unsigned frames() const
    {
        return static_cast<unsigned>(wires_.size());
    }

    /** CNF word for a wire at a frame. */
    const sat::Word &wire(unsigned frame, nl::CellId cell);

    /** CNF word for one memory word at a frame. */
    const sat::Word &memWord(unsigned frame, nl::MemId mem, unsigned addr);

    /** After a Sat result: concrete value of a wire in the model. */
    Bits wireValue(unsigned frame, nl::CellId cell);

  private:
    void buildFrame(unsigned f);
    sat::Word readMem(unsigned frame, nl::MemId mem,
                      const sat::Word &addr);

    const nl::Netlist &nl_;
    sat::CnfBuilder &cnf_;
    Options options_;

    /** wires_[frame][cell] — empty Word until built. */
    std::vector<std::vector<sat::Word>> wires_;
    /** mems_[frame][mem][addr] — word contents at frame start. */
    std::vector<std::vector<std::vector<sat::Word>>> mems_;
};

} // namespace r2u::bmc

#endif // R2U_BMC_UNROLLER_HH
