/**
 * @file
 * Time-frame expansion of a netlist into CNF.
 *
 * The Unroller bit-blasts a synchronous netlist over k clock frames
 * through a CnfBuilder: inputs become fresh variables per frame,
 * registers follow Q' = EN ? D : Q, and memories are modeled as
 * per-frame arrays of words with read-before-write semantics matching
 * sim::Simulator. Initial state is either concrete (power-on values,
 * with selected memories made symbolic) or fully free (used by
 * induction-style reasoning).
 *
 * Construction is demand-driven by default: wire(frame, cell) builds
 * only the transitive fan-in of the requested wire (per-cell memoized,
 * registers chasing D/EN into the previous frame), and a memory array
 * is materialized at a frame only when a read or a dependent write in
 * the cone demands it. This is the cone-of-influence reduction the
 * paper gets from JasperGold: a localized SVA only ever pays for the
 * few state elements it mentions, not the whole design (see
 * nl::computeCoi for the static characterization of what can be
 * built). Options::fullUnroll restores the eager everything-at-every-
 * frame behavior for differential testing.
 */

#ifndef R2U_BMC_UNROLLER_HH
#define R2U_BMC_UNROLLER_HH

#include <map>
#include <set>
#include <vector>

#include "netlist/netlist.hh"
#include "sat/cnf.hh"

namespace r2u::bmc
{

class Unroller
{
  public:
    struct Options
    {
        /** Concrete power-on state (vs fully symbolic initial state). */
        bool concreteInit = true;
        /**
         * Eagerly bit-blast every cell and every memory word at every
         * frame (the pre-slicing behavior, exposed as --full-unroll).
         * Verdicts are identical either way; only CNF size differs.
         */
        bool fullUnroll = false;
        /** Memories whose initial contents are symbolic regardless. */
        std::set<nl::MemId> symbolicMems;
        /** Concrete initial contents overriding the netlist defaults. */
        std::map<nl::MemId, std::vector<Bits>> memInit;
        /**
         * Concrete per-frame input overrides: inputValues[frame][cell]
         * builds that input as a constant word instead of fresh
         * variables. Used by counterexample replay (bmc/validate): a
         * fully pinned cone constant-folds through the CnfBuilder, so
         * re-evaluating a monitor over a concrete trace costs almost
         * nothing. Inputs without an override stay symbolic.
         */
        std::vector<std::map<nl::CellId, Bits>> inputValues;
        /**
         * Concrete frame-0 register overrides, honored when the
         * initial state is symbolic (!concreteInit). Same replay use.
         */
        std::map<nl::CellId, Bits> regInit;
    };

    /** Construction-effort counters (what the laziness saved). */
    struct Stats
    {
        uint64_t wiresBuilt = 0;     ///< (frame, cell) words built
        uint64_t memArraysBuilt = 0; ///< (frame, mem) arrays built
        uint64_t memWordsBuilt = 0;  ///< total words in those arrays
    };

    Unroller(const nl::Netlist &netlist, sat::CnfBuilder &cnf,
             Options options);

    sat::CnfBuilder &cnf() { return cnf_; }
    const nl::Netlist &netlist() const { return nl_; }
    const Options &options() const { return options_; }

    /**
     * Make frames 0..n-1 addressable. Eager mode builds them fully;
     * demand-driven mode only reserves the memo tables.
     */
    void ensureFrames(unsigned n);

    /**
     * Adopt another unroller's memo tables (built wires, memory
     * arrays, construction stats). Only meaningful over the same
     * netlist right after Solver::cloneFrom() of the other unroller's
     * solver, so the adopted Words refer to live variables. Wires the
     * donor built are then served from the memo instead of being
     * bit-blasted again.
     */
    void adoptState(const Unroller &other);

    unsigned frames() const
    {
        return static_cast<unsigned>(wires_.size());
    }

    /** CNF word for a wire at a frame (builds its cone on demand). */
    const sat::Word &wire(unsigned frame, nl::CellId cell);

    /** CNF word for one memory word at a frame (demands the array). */
    const sat::Word &memWord(unsigned frame, nl::MemId mem, unsigned addr);

    /**
     * After a Sat result: concrete value of a wire in the model. The
     * wire must have been demanded before the solve — a fresh demand
     * here would mint variables the model does not cover.
     */
    Bits wireValue(unsigned frame, nl::CellId cell);

    /** Has this (frame, cell) wire been bit-blasted? */
    bool wireMaterialized(unsigned frame, nl::CellId cell) const;

    /** Has this (frame, mem) array been bit-blasted? */
    bool memMaterialized(unsigned frame, nl::MemId mem) const;

    /** Has any frame of this memory been bit-blasted? */
    bool memEverMaterialized(nl::MemId mem) const;

    const Stats &stats() const { return stats_; }

  private:
    /** One pending (frame, cell-or-mem) construction task. */
    struct DemandTask
    {
        unsigned frame;
        int id; ///< CellId or MemId depending on isMem
        bool isMem;
        bool expanded;
    };

    void demand(unsigned frame, int id, bool is_mem);
    void pushDeps(std::vector<DemandTask> &stack, const DemandTask &t);
    void buildWire(unsigned f, nl::CellId id);
    void buildMemArray(unsigned f, nl::MemId m);
    void buildFrameEager(unsigned f);

    /** Wrap an address to the memory's abits (power-of-two modulo). */
    sat::Word normAddr(const sat::Word &addr, unsigned abits);
    sat::Word readMem(unsigned frame, nl::MemId mem,
                      const sat::Word &addr);

    const nl::Netlist &nl_;
    sat::CnfBuilder &cnf_;
    Options options_;

    /** wires_[frame][cell] — empty Word until built. */
    std::vector<std::vector<sat::Word>> wires_;
    /** mems_[frame][mem][addr] — word contents at frame start. */
    std::vector<std::vector<std::vector<sat::Word>>> mems_;
    /** mem_built_[frame][mem] — arrays memoized separately (a
     *  memory's word vector being empty can't distinguish depth-0). */
    std::vector<std::vector<char>> mem_built_;

    Stats stats_;
};

} // namespace r2u::bmc

#endif // R2U_BMC_UNROLLER_HH
