/**
 * @file
 * Independent validation of BMC verdicts (trust-but-verify).
 *
 * A Refuted verdict is only as trustworthy as the solver + incremental
 * machinery that produced it. replayTrace() re-derives the evidence
 * two independent ways:
 *
 *  1. Concrete replay: the counterexample's input valuations and
 *     symbolic-initial-state choices are fed to sim::Simulator (the
 *     reference netlist semantics, no SAT involved) and every watched
 *     signal / memory-port read is compared frame by frame.
 *  2. Monitor re-check: the property is rebuilt in a brand-new
 *     non-incremental solver context (no shared clauses, no
 *     activation literals), every captured input/init value is pinned
 *     to its concrete trace value, and the violation literal is
 *     solved. SAT here means the concrete execution genuinely
 *     violates the property; UNSAT means the "counterexample" does
 *     not refute anything.
 *
 * Both must agree for a trace to count as validated. The same module
 * optionally dumps the replayed execution as a VCD file (the
 * JasperGold-style debugging companion).
 */

#ifndef R2U_BMC_VALIDATE_HH
#define R2U_BMC_VALIDATE_HH

#include <string>
#include <unordered_map>

#include "bmc/checker.hh"

namespace r2u::bmc
{

struct ReplayResult
{
    /** simOk && monitorOk: the refutation stands on its own. */
    bool ok = false;
    /** Simulator agreed with every recorded signal/mem-read value. */
    bool simOk = false;
    /** Fresh pinned solver context confirmed the violation (SAT). */
    bool monitorOk = false;
    /** Human-readable mismatch diagnostics; empty when ok. */
    std::string note;
    double seconds = 0.0;
};

/**
 * Replay a Refuted verdict's trace through the reference simulator
 * and a fresh monitor context. @p vcd_path, when non-empty, receives
 * the replayed execution as a VCD waveform (written regardless of the
 * outcome — a failing replay is exactly when the waveform matters).
 */
ReplayResult replayTrace(
    const nl::Netlist &netlist,
    const std::unordered_map<std::string, nl::CellId> &signals,
    const Unroller::Options &options, unsigned bound,
    const PropertyFn &prop, const Trace &trace,
    const std::string &vcd_path = "");

} // namespace r2u::bmc

#endif // R2U_BMC_VALIDATE_HH
