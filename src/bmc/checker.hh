/**
 * @file
 * Bounded property checking over an unrolled netlist — the stand-in
 * for the commercial SVA property verifier in the paper's flow.
 *
 * A property is a callback that, given a PropCtx (solver + unroller +
 * helpers for rigid variables, assumptions, and per-frame signal
 * access), returns a single "violation" literal. checkProperty()
 * asserts the violation and solves: SAT yields Refuted plus a
 * counterexample trace of the watched signals (JasperGold "cex"),
 * UNSAT yields Proven at the bound, and an exhausted conflict budget
 * yields Unknown (JasperGold "undetermined").
 */

#ifndef R2U_BMC_CHECKER_HH
#define R2U_BMC_CHECKER_HH

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "bmc/unroller.hh"
#include "common/logging.hh"

namespace r2u::bmc
{

enum class Verdict { Proven, Refuted, Unknown };

const char *verdictName(Verdict verdict);

/**
 * How a query's final verdict came about — in particular, *why* an
 * Unknown is Unknown (which budget or deadline bit). Definite verdicts
 * are Solve (first attempt) or Retry (a budget-escalation retry
 * resolved an earlier Unknown).
 */
enum class VerdictSource : uint8_t {
    Solve,             ///< definite verdict on the first attempt
    Retry,             ///< definite verdict on an escalated retry
    ConflictBudget,    ///< Unknown: conflict budget exhausted
    PropagationBudget, ///< Unknown: propagation budget exhausted
    QueryDeadline,     ///< Unknown: per-query deadline passed
    TotalDeadline,     ///< Unknown: batch/total deadline passed mid-solve
    Cancelled,         ///< Unknown: never solved (cancelled while queued)
    Interrupted,       ///< Unknown: asynchronous interrupt mid-solve
    /**
     * Unknown: the verdict-validation layer caught an inconsistency
     * (a counterexample that does not replay, or a proof re-check
     * that disagrees) and the quarantine re-solve could not restore a
     * consistent definite verdict. Degrading beats propagating a
     * possibly-unsound verdict into the synthesized model.
     */
    ValidationFailed,
    /**
     * Definite verdict produced by a diversified SAT-portfolio
     * challenger rather than the incumbent incremental context.
     */
    Portfolio,
    /**
     * Definite verdict produced by a proof-engine racer (IC3/PDR or
     * k-induction) that beat the incumbent BMC solve (see
     * EngineChoice::Race).
     */
    Race,
};

const char *verdictSourceName(VerdictSource source);

/**
 * Which checking algorithm produced a verdict. BMC is the incumbent;
 * k-induction and PDR can return *unbounded* Proven verdicts (valid at
 * every bound, not just the query's).
 */
enum class EngineKind : uint8_t { Bmc, KInduction, Pdr };

const char *engineKindName(EngineKind kind);

/**
 * Resource limits for one solve. Defaults impose nothing; the BMC
 * engine layers per-query deadlines, retry escalation, and a shared
 * cancellation flag on top of these.
 */
struct SolveLimits
{
    int64_t conflicts = -1;    ///< conflict budget (<0: unlimited)
    int64_t propagations = -1; ///< propagation budget (<0: unlimited)
    double seconds = -1.0;     ///< wall-clock deadline (<0: none)
    /** Optional shared stop flag polled during the solve. */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Optional solver configuration (restart policy, reduction
     * ranking, inprocessing cadence) applied before the solve. The
     * engine routes its base config through here so the fresh jobs=1
     * path and quarantine re-solves search identically to the
     * incremental contexts. nullptr keeps the solver's current config.
     */
    const sat::SolverConfig *config = nullptr;
};

struct TraceStep
{
    std::map<std::string, Bits> signals;
    /**
     * Watched memory-port reads, keyed "memname#port" (port = index
     * into nl::Memory::readPorts). Populated for memories registered
     * through PropCtx::watchMem so replayed traces can be compared on
     * memory-backed designs too.
     */
    std::map<std::string, Bits> memReads;
};

/**
 * Counterexample trace: one step per frame with the watched signals,
 * plus everything needed to replay the trace through sim::Simulator —
 * the full per-frame input valuations and the model's choice of
 * symbolic initial state (free registers / symbolic memories). Only
 * wires the query's cone actually materialized are recorded; anything
 * absent cannot influence the watched values.
 */
struct Trace
{
    std::vector<TraceStep> steps;
    /** inputs[frame][input-name] = model value (materialized only). */
    std::vector<std::map<std::string, Bits>> inputs;
    /** Frame-0 values of symbolic-initial-state registers. */
    std::map<std::string, Bits> initRegs;
    /** Frame-0 contents of symbolic/overridden memories (full array). */
    std::map<std::string, std::vector<Bits>> initMems;

    std::string toString() const;
};

class PropCtx
{
  public:
    PropCtx(const nl::Netlist &netlist,
            const std::unordered_map<std::string, nl::CellId> &signals,
            Unroller::Options options, unsigned bound);

    unsigned bound() const { return bound_; }
    sat::Solver &solver() { return solver_; }
    sat::CnfBuilder &cnf() { return cnf_; }
    Unroller &unroller() { return unroller_; }

    /**
     * Begin an isolated query on a long-lived context (incremental
     * BMC). Per-query state (rigids, watches) is reset and a fresh
     * activation literal is allocated; until endQuery(), assume()
     * emits clauses guarded by the activation literal instead of hard
     * root-level facts, so the shared transition-relation CNF stays
     * sound for later queries. Solve with
     * solver().solve({activation()}).
     */
    void beginQuery();

    /** The current query's activation literal. */
    sat::Lit activation() const
    {
        R2U_ASSERT(in_query_, "activation() outside a query");
        return act_;
    }

    bool inQuery() const { return in_query_; }

    /**
     * Retire the current query: its activation literal is asserted
     * false, permanently satisfying every clause it guarded.
     */
    void endQuery();

    /**
     * Warm-start this context from a donor over the same netlist and
     * bound: the donor's clause database, structural-hash caches, and
     * unroller memo tables are copied wholesale, so wires the donor
     * already bit-blasted are never encoded again here. This context
     * must be outside a query; the donor may be inside one as long as
     * its solver is idle at level 0 (CNF built, solve not started).
     * Verdicts are unaffected — the copied clauses are the donor's
     * transition relation plus retired or never-assumed guarded
     * monitor clauses, all satisfiable independently of any later
     * query.
     */
    void seedFrom(const PropCtx &donor);

    /** Resolve a hierarchical signal name. fatal() if unknown. */
    nl::CellId cellOf(const std::string &name) const;

    /** Value of a named signal at a frame. */
    const sat::Word &at(unsigned frame, const std::string &name);

    /**
     * A rigid symbolic variable: constant across frames. Repeated
     * calls with the same name return the same word.
     */
    const sat::Word &rigid(const std::string &name, unsigned width);

    /**
     * Add an assumption. Outside a query this is a hard root-level
     * fact; inside a query it is guarded by the activation literal
     * (additive-only, so the shared CNF prefix stays sound).
     */
    void assume(sat::Lit a);

    /** Constrain an input to a constant value in every frame. */
    void pinInput(const std::string &name, uint64_t value);

    /** Constrain an input at one frame. */
    void pinInputAt(unsigned frame, const std::string &name,
                    uint64_t value);

    /** Record a signal in counterexample traces. */
    void watch(const std::string &name);

    /**
     * Record a memory's read ports in counterexample traces (netlist
     * memory name, resolved through the unroller's netlist). Each read
     * port's output is demanded at every frame and lands in
     * TraceStep::memReads as "memname#port".
     */
    void watchMem(const std::string &mem_name);

    // --- small property-building helpers ---
    sat::Lit eqConst(unsigned frame, const std::string &name,
                     uint64_t value);
    sat::Lit eqRigid(unsigned frame, const std::string &name,
                     const sat::Word &r);
    /** signal value changed between frame-1 and frame (frame >= 1). */
    sat::Lit changedAt(unsigned frame, const std::string &name);

    const std::vector<std::string> &watched() const { return watched_; }
    const std::vector<nl::MemId> &watchedMems() const
    {
        return watched_mems_;
    }

  private:
    const std::unordered_map<std::string, nl::CellId> &signals_;
    sat::Solver solver_;
    sat::CnfBuilder cnf_;
    Unroller unroller_;
    unsigned bound_;
    std::map<std::string, sat::Word> rigids_;
    std::vector<std::string> watched_;
    std::vector<nl::MemId> watched_mems_;
    sat::Lit act_ = sat::kLitUndef;
    bool in_query_ = false;
};

struct CheckResult
{
    Verdict verdict = Verdict::Unknown;
    /** Why the verdict is what it is (budget class for Unknowns). */
    VerdictSource source = VerdictSource::Solve;
    double seconds = 0.0;
    unsigned bound = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    /** Escalated re-solves this query needed (engine retry policy). */
    unsigned retries = 0;
    /** Solver totals when the query finished (COI-sliced contexts stay
     *  small; --full-unroll restores the whole-design footprint). */
    size_t cnfVars = 0;
    size_t cnfClauses = 0;
    /** What this query alone added to its (possibly shared) context. */
    size_t cnfVarsAdded = 0;
    size_t cnfClausesAdded = 0;
    /** Static cone size when the query declared seeds (0 otherwise). */
    size_t coiCells = 0;
    size_t coiMems = 0;
    Trace trace; ///< populated when Refuted

    // --- proof-engine attribution (bmc::Engine race) ---
    /** This query raced PDR/k-induction against the BMC solve. */
    bool engineRaced = false;
    /** Algorithm that produced this verdict. */
    EngineKind engine = EngineKind::Bmc;
    /** Proven for every bound (PDR convergence or a closed induction
     *  step), not just CheckResult::bound. */
    bool unbounded = false;
    /** PDR: highest frame level fully cleared of bad states. */
    unsigned pdrFrames = 0;
    /** PDR: proof obligations processed. */
    uint64_t pdrObligations = 0;

    // --- trust-but-verify validation accounting (bmc::Engine) ---
    /** Verdict independently confirmed (replay or proof re-check). */
    bool validated = false;
    /** Verdict loaded from a resume journal (validated when written). */
    bool fromJournal = false;
    /** This result was appended to the run journal. */
    bool journaled = false;
    /** Verdict replayed from the cross-run verdict cache (its content
     *  key matched — same cone, property, and bound). */
    bool fromCache = false;
    /** This result was appended to the verdict cache. */
    bool cached = false;
    /** Counterexample replays performed for this query. */
    unsigned replays = 0;
    /** Fresh non-incremental proof re-solves performed. */
    unsigned proofRechecks = 0;
    /** Proof re-checks that came back Unknown (neither confirms nor
     *  contradicts; the primary Proven verdict is kept). */
    unsigned recheckInconclusive = 0;
    /** Primary-vs-validation disagreements observed (quarantined). */
    unsigned validationMismatches = 0;
    double replaySeconds = 0.0;
    double recheckSeconds = 0.0;
    double validateSeconds = 0.0;
    /** Diagnostic bundle on mismatch (trace + CNF stats) or recovery
     *  note; empty when validation passed cleanly. */
    std::string validationNote;

    // --- portfolio / simplification accounting (bmc::Engine) ---
    /** Racers in this query's portfolio (0: no race was run). */
    unsigned portfolioRacers = 0;
    /** Racer that produced the verdict: 0 = the incumbent incremental
     *  context, >0 = a diversified challenger, -1 = nobody (Unknown
     *  without a definitive verdict, or no race). */
    int portfolioWinner = -1;
    /** Learnt clauses published to the race's shared pool (all
     *  racers). */
    uint64_t sharedExported = 0;
    /** Learnt clauses imported from the pool (all racers). */
    uint64_t sharedImported = 0;
    /** Variables eliminated by challenger CNF preprocessing (BVE). */
    uint64_t preprocessVarsEliminated = 0;
    /** Clauses dropped by challenger CNF preprocessing. */
    uint64_t preprocessClausesRemoved = 0;
    /** In-search simplifyDB() passes in the incumbent this query. */
    uint64_t inprocessRuns = 0;
    /** Clauses removed by those simplifyDB() passes. */
    uint64_t inprocessClausesRemoved = 0;
};

/** Builds a property and returns its violation literal. */
using PropertyFn = std::function<sat::Lit(PropCtx &)>;

/**
 * Counterexample trace of the context's watched signals over all
 * frames; valid only right after a Sat solver result.
 */
Trace extractTrace(PropCtx &ctx);

/**
 * Per-frame property: returns the "bad at this frame" literal; may
 * also add frame-local environment assumptions through the context.
 */
using FramePropertyFn =
    std::function<sat::Lit(PropCtx &, unsigned frame)>;

/**
 * Check one property at the given bound.
 *
 * @param conflict_budget solver conflict cap (<0: none); exceeding it
 *        yields Verdict::Unknown, the analogue of a JasperGold
 *        timeout/undetermined result (Fig. 6 patterned bars).
 */
CheckResult checkProperty(
    const nl::Netlist &netlist,
    const std::unordered_map<std::string, nl::CellId> &signals,
    Unroller::Options options, unsigned bound, const PropertyFn &prop,
    int64_t conflict_budget = -1);

/**
 * Check one property under full solve limits (budgets, deadline,
 * shared cancellation flag). Any exhausted limit yields
 * Verdict::Unknown with the limit recorded in CheckResult::source.
 *
 * @param warm optional donor context (same netlist/options/bound) to
 *        warm-start from via PropCtx::seedFrom instead of
 *        bit-blasting the transition relation again. The search still
 *        starts from scratch — no learnt clauses or saved phases
 *        carry over when the donor was snapshotted before solving —
 *        and the encoding is deterministic, so the clauses equal what
 *        a cold build would produce.
 */
CheckResult checkProperty(
    const nl::Netlist &netlist,
    const std::unordered_map<std::string, nl::CellId> &signals,
    Unroller::Options options, unsigned bound, const PropertyFn &prop,
    const SolveLimits &limits, const PropCtx *warm = nullptr);

/** Apply limits to a solver ahead of one solve() call. */
void applyLimits(sat::Solver &solver, const SolveLimits &limits);

/**
 * Map the solver's stop reason onto a verdict source. The solver
 * cannot tell a per-query deadline from a clamped total deadline or a
 * user interrupt from a batch cancellation — callers that know refine
 * Deadline/Interrupt afterwards.
 */
VerdictSource sourceFromStop(sat::StopReason reason);

struct InductiveResult
{
    /** Proven here means proven for ALL cycle counts (k-induction),
     *  not just up to a bound. */
    Verdict verdict = Verdict::Unknown;
    /** True iff the induction step succeeded (vs. only the bounded
     *  base case). */
    bool inductive = false;
    /**
     * True iff the base-case BMC solve at base_bound came back Unsat —
     * i.e. the property holds at that bound even when the induction
     * step failed. The engine's race maps this onto a bounded Proven
     * verdict; InductiveResult::verdict itself stays Unknown when the
     * property is not k-inductive, for backward compatibility.
     */
    bool baseProven = false;
    /** Budget class when a solve came back Unknown. */
    VerdictSource source = VerdictSource::Solve;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    unsigned k = 0;
    double seconds = 0.0;
    Trace trace; ///< base-case counterexample when Refuted
};

/**
 * k-induction: prove a per-frame safety property for every reachable
 * cycle. Base case runs BMC from the concrete initial state over
 * @p base_bound frames; the induction step assumes the property in k
 * consecutive frames from an arbitrary state and asserts it in the
 * next. Refuted results carry a real trace; Unknown means the
 * property is not k-inductive at this k (it may still hold).
 */
InductiveResult checkInductive(
    const nl::Netlist &netlist,
    const std::unordered_map<std::string, nl::CellId> &signals,
    Unroller::Options options, unsigned k, unsigned base_bound,
    const FramePropertyFn &prop, int64_t conflict_budget = -1);

/**
 * k-induction under full solve limits (budgets, deadline, shared
 * cancellation flag), the overload the engine's proof race uses. The
 * budgets are totals across both the base case and the induction
 * step.
 */
InductiveResult checkInductive(
    const nl::Netlist &netlist,
    const std::unordered_map<std::string, nl::CellId> &signals,
    Unroller::Options options, unsigned k, unsigned base_bound,
    const FramePropertyFn &prop, const SolveLimits &limits);

} // namespace r2u::bmc

#endif // R2U_BMC_CHECKER_HH
