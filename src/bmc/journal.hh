/**
 * @file
 * Crash-safe append-only run journal for validated BMC verdicts.
 *
 * A synthesis run that is killed mid-flight loses hours of solver
 * work; the journal makes every *validated* definite verdict durable
 * the moment it is produced. Records are appended with write()+fsync()
 * under a mutex, each carrying its own FNV-1a checksum, so a crash at
 * any byte offset leaves at worst one torn record at the tail — the
 * loader detects it, drops it, and truncates the file back to the last
 * good offset. On --resume the engine answers journaled queries
 * without re-solving them.
 *
 * Format (all little-endian, native widths — the journal is a local
 * restart aid, not an interchange format):
 *
 *   header:  "R2UJ"  u32 version  u64 configHash
 *   record:  u32 payloadLen  u64 fnv1a(payload)  payload
 *   payload: u64 key  u64 baseKey  u8 verdict  u8 source  u8 flags
 *            u8 pad  u32 bound  u32 retries  f64 seconds
 *            u64 conflicts  u64 propagations
 *            u32 nameLen  name bytes
 *
 * flags bit0 = verdict was independently validated; bit1 = the proof
 * is unbounded (valid at every bound, indexed under baseKey for
 * bound-independent reuse). configHash binds
 * the journal to the producing configuration (the structural netlist
 * hash, bound, unroll mode — NOT --jobs: a run may resume at any
 * parallelism). Only Proven/Refuted verdicts are journaled; Unknowns
 * are cheap to reproduce and may resolve differently under different
 * budgets. Traces are not stored — a resumed Refuted verdict
 * re-solves only if its consumer needs the counterexample (synthesis
 * keeps the verdict).
 *
 * The same machinery powers the cross-run VerdictCache below: the
 * identical record codec in a directory-scoped file, but keyed purely
 * by query *content* (COI-slice + property + bound hash) instead of
 * being bound to one run's configuration.
 */

#ifndef R2U_BMC_JOURNAL_HH
#define R2U_BMC_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include <sys/types.h>

#include "bmc/checker.hh"

namespace r2u::bmc
{

/**
 * FNV-1a over a query's identity; the journal's lookup key.
 *
 * @p content_hash is the query's content-derived identity (hash of
 * its COI slice, property encoding, and bound — see nl::coneHash and
 * bmc::Query::contentHash). Mixing it into the key is what prevents
 * the classic stale-resume bug: an SVA whose template was edited but
 * whose name survived, or a same-named query over rewired logic, gets
 * a different key and simply misses instead of resurrecting the old
 * verdict. Callers without a content hash pass 0 and fall back to
 * name + bound keying (protected only by the journal's config hash).
 */
uint64_t journalKey(const std::string &name, unsigned bound,
                    uint64_t content_hash);

/**
 * Bound-independent sibling of journalKey(): the same FNV-1a chain
 * with the bound left out. Unbounded Proven verdicts (PDR frame
 * convergence, a closed induction step) hold at *every* bound, so they
 * are additionally indexed under this key and can answer a later query
 * for the same cone + property at any bound (see lookupUnbounded).
 * Callers without a bound-independent content hash pass 0 and get no
 * unbounded reuse.
 */
uint64_t journalBaseKey(const std::string &name, uint64_t base_hash);

class Journal
{
  public:
    struct Record
    {
        uint64_t key = 0;
        /**
         * Bound-independent identity (journalBaseKey for the journal,
         * the raw Query::baseHash for the cache); 0 when the producer
         * had no bound-independent hash. Meaningful with `unbounded`:
         * it is the secondary index that lets the proof satisfy other
         * bounds.
         */
        uint64_t baseKey = 0;
        std::string name;
        Verdict verdict = Verdict::Unknown;
        VerdictSource source = VerdictSource::Solve;
        bool validated = false;
        /**
         * Proof generality: true for a Proven verdict valid at every
         * bound (PDR convergence or a closed induction step), false
         * for bound-specific verdicts. Bounded records only ever
         * answer an exact (name, bound, content) key match.
         */
        bool unbounded = false;
        unsigned bound = 0;
        unsigned retries = 0;
        double seconds = 0.0;
        uint64_t conflicts = 0;
        uint64_t propagations = 0;
    };

    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating if absent) a journal bound to @p config_hash.
     * With @p resume, existing records are loaded for lookup() and any
     * torn tail is truncated away; without it an existing file is
     * truncated to empty (a fresh run must not inherit stale
     * verdicts). fatal() on I/O errors or a resume config-hash
     * mismatch (a journal from a different design/bound/unroll mode
     * must never answer this run's queries).
     */
    void open(const std::string &path, uint64_t config_hash,
              bool resume);

    /**
     * Like open(resume=true) but takes an exclusive flock() on the
     * file first and returns false — leaving the journal closed —
     * when another live process already holds it, instead of letting
     * two writers interleave frames. Used by the service's shared
     * state directory, where a second daemon on the same --state DIR
     * should degrade to running journal-less, not corrupt the store.
     */
    bool openShared(const std::string &path, uint64_t config_hash);

    bool isOpen() const { return fd_ >= 0; }

    /** True once an append failure disabled journaling for the run. */
    bool disabled() const { return disabled_; }

    /**
     * Test/chaos seam: intercept the next append's write(). The hook
     * receives the frame size about to be written and returns how
     * many bytes to actually put on disk before reporting failure
     * (a torn frame), or < 0 to let the write proceed untouched.
     * Persistent until replaced; clear with nullptr.
     */
    void setWriteFault(std::function<ssize_t(size_t)> hook);

    /** Records loaded from disk at open(resume=true) time. */
    size_t numLoaded() const { return loaded_.size(); }

    /** Look up a previously journaled verdict. nullptr if absent. */
    const Record *lookup(uint64_t key) const;

    /**
     * Look up an *unbounded Proven* verdict by its bound-independent
     * key (journalBaseKey). Only records flagged unbounded are indexed
     * here; a hit is valid for the same cone + property at any bound.
     * nullptr if absent.
     */
    const Record *lookupUnbounded(uint64_t base_key) const;

    /**
     * Durably append one validated verdict (write + fsync under a
     * mutex; safe from worker threads). Returns false (after a warn)
     * on I/O failure — the run continues, it just loses resumability.
     */
    bool append(const Record &rec);

    /** Records appended by *this* process (excludes loaded ones). */
    size_t numAppended() const { return appended_; }

  private:
    int fd_ = -1;
    /** Held open purely to keep an openShared() flock alive. */
    int lock_fd_ = -1;
    std::string path_;
    std::mutex mu_;
    std::unordered_map<uint64_t, Record> loaded_;
    /** baseKey -> unbounded Proven record (element pointers into
     *  loaded_ are stable: unordered_map is node-based). */
    std::unordered_map<uint64_t, const Record *> by_base_;
    size_t appended_ = 0;
    /** File offset after the last fully-durable frame; append
     *  failures roll the file back here so a partial frame can never
     *  poison the records behind it. */
    off_t end_ = 0;
    bool disabled_ = false;
    std::function<ssize_t(size_t)> write_fault_;
};

/**
 * Content-addressed, cross-run verdict cache (--cache DIR).
 *
 * Where the Journal is one run's linear restart log bound to a single
 * configuration hash, the cache is a shared store keyed purely by
 * query content: the caller keys each record by a hash of the query's
 * COI slice, property encoding, and bound (bmc::Query::contentHash),
 * so a verdict is reusable by *any* later run — same design, a
 * near-identical edit, a different job count — whose query hashes to
 * the same content. An RTL edit re-solves exactly the queries whose
 * cone content changed; everything else replays in microseconds.
 *
 * Storage is the journal's record codec in `<dir>/verdicts.r2uc`
 * ("R2UC" magic, no config binding — the keys self-validate).
 * Appends are write()+fsync() under a mutex; loading is *lenient*
 * where the journal is fatal: a bad magic/version starts the cache
 * fresh, and a torn or corrupt record ends the trusted region (it and
 * everything after it are dropped and truncated away, never trusted).
 * A cache can only ever cost re-solves, not soundness, so it must
 * never abort a run. Duplicate keys resolve to the newest record;
 * appending an already-present key is a durable no-op, so warm re-runs
 * do not grow the file. Only definite verdicts belong in the cache;
 * Unknowns are budget-dependent and are never stored.
 *
 * Concurrency: append() is thread-safe (worker threads); lookup() /
 * hasStaleEntry() lock the same mutex, and returned record pointers
 * stay valid for the cache's lifetime (node-based map).
 */
class VerdictCache
{
  public:
    VerdictCache() = default;
    ~VerdictCache();

    VerdictCache(const VerdictCache &) = delete;
    VerdictCache &operator=(const VerdictCache &) = delete;

    /**
     * Open (creating, including the directory, if absent) the cache
     * under @p dir. Existing records are loaded for lookup; corrupt
     * content is dropped as described above. fatal() only on I/O
     * errors that prevent the store from operating at all.
     */
    void open(const std::string &dir);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * True when another process held the store's write lock at open()
     * time. A read-only cache still serves lookups (isOpen() stays
     * true) but append() is a silent no-op — the second opener of a
     * shared --cache DIR loses warm-write, never store integrity.
     */
    bool readOnly() const { return read_only_; }

    /** True once an append failure disabled caching for the run. */
    bool disabled() const { return disabled_; }

    /** Same torn-write test/chaos seam as Journal::setWriteFault. */
    void setWriteFault(std::function<ssize_t(size_t)> hook);

    /** Records loaded from disk at open() time (after dedup). */
    size_t numLoaded() const;

    /** Cached verdict for a content key. nullptr if absent. */
    const Journal::Record *lookup(uint64_t key) const;

    /**
     * Unbounded-Proven verdict for a bound-independent content key
     * (Query::baseHash). A hit is valid for the same cone + property
     * at any bound. nullptr if absent.
     */
    const Journal::Record *lookupUnbounded(uint64_t base_key) const;

    /**
     * True when the cache holds a record for the same (name, bound)
     * under a *different* content key — i.e. this query existed
     * before but its cone or property content changed since it was
     * cached. Purely diagnostic (distinguishes an invalidation from a
     * never-seen miss in the hit/miss accounting).
     */
    bool hasStaleEntry(const std::string &name, unsigned bound,
                       uint64_t key) const;

    /**
     * Durably append one definite verdict keyed by its content hash
     * (rec.key). Returns true when the record is durable in the cache
     * — including the already-present case, which writes nothing.
     * Returns false (after a warn) on I/O failure; the run continues.
     */
    bool append(const Journal::Record &rec);

    /** Records physically appended by *this* process. */
    size_t numAppended() const;

    const std::string &filePath() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Journal::Record> loaded_;
    /** name -> (bound, key) pairs seen, for invalidation accounting. */
    std::unordered_map<std::string,
                       std::vector<std::pair<unsigned, uint64_t>>>
        by_name_;
    /** baseKey -> unbounded Proven record (stable element pointers). */
    std::unordered_map<uint64_t, const Journal::Record *> by_base_;
    size_t appended_ = 0;
    /** Offset after the last durable frame (see Journal::end_). */
    off_t end_ = 0;
    bool read_only_ = false;
    bool disabled_ = false;
    std::function<ssize_t(size_t)> write_fault_;
};

} // namespace r2u::bmc

#endif // R2U_BMC_JOURNAL_HH
