/**
 * @file
 * Crash-safe append-only run journal for validated BMC verdicts.
 *
 * A synthesis run that is killed mid-flight loses hours of solver
 * work; the journal makes every *validated* definite verdict durable
 * the moment it is produced. Records are appended with write()+fsync()
 * under a mutex, each carrying its own FNV-1a checksum, so a crash at
 * any byte offset leaves at worst one torn record at the tail — the
 * loader detects it, drops it, and truncates the file back to the last
 * good offset. On --resume the engine answers journaled queries
 * without re-solving them.
 *
 * Format (all little-endian, native widths — the journal is a local
 * restart aid, not an interchange format):
 *
 *   header:  "R2UJ"  u32 version  u64 configHash
 *   record:  u32 payloadLen  u64 fnv1a(payload)  payload
 *   payload: u64 key  u8 verdict  u8 source  u8 flags  u8 pad
 *            u32 bound  u32 retries  f64 seconds
 *            u64 conflicts  u64 propagations
 *            u32 nameLen  name bytes
 *
 * flags bit0 = verdict was independently validated. configHash binds
 * the journal to the producing configuration (netlist shape, bound,
 * unroll mode — NOT --jobs: a run may resume at any parallelism).
 * Only Proven/Refuted verdicts are journaled; Unknowns are cheap to
 * reproduce and may resolve differently under different budgets.
 * Traces are not stored — a resumed Refuted verdict re-solves only if
 * its consumer needs the counterexample (synthesis keeps the verdict).
 */

#ifndef R2U_BMC_JOURNAL_HH
#define R2U_BMC_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bmc/checker.hh"

namespace r2u::bmc
{

/** FNV-1a over a query's identity; the journal's lookup key. */
uint64_t journalKey(const std::string &name, unsigned bound);

class Journal
{
  public:
    struct Record
    {
        uint64_t key = 0;
        std::string name;
        Verdict verdict = Verdict::Unknown;
        VerdictSource source = VerdictSource::Solve;
        bool validated = false;
        unsigned bound = 0;
        unsigned retries = 0;
        double seconds = 0.0;
        uint64_t conflicts = 0;
        uint64_t propagations = 0;
    };

    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating if absent) a journal bound to @p config_hash.
     * With @p resume, existing records are loaded for lookup() and any
     * torn tail is truncated away; without it an existing file is
     * truncated to empty (a fresh run must not inherit stale
     * verdicts). fatal() on I/O errors or a resume config-hash
     * mismatch (a journal from a different design/bound/unroll mode
     * must never answer this run's queries).
     */
    void open(const std::string &path, uint64_t config_hash,
              bool resume);

    bool isOpen() const { return fd_ >= 0; }

    /** Records loaded from disk at open(resume=true) time. */
    size_t numLoaded() const { return loaded_.size(); }

    /** Look up a previously journaled verdict. nullptr if absent. */
    const Record *lookup(uint64_t key) const;

    /**
     * Durably append one validated verdict (write + fsync under a
     * mutex; safe from worker threads). Returns false (after a warn)
     * on I/O failure — the run continues, it just loses resumability.
     */
    bool append(const Record &rec);

    /** Records appended by *this* process (excludes loaded ones). */
    size_t numAppended() const { return appended_; }

  private:
    int fd_ = -1;
    std::string path_;
    std::mutex mu_;
    std::unordered_map<uint64_t, Record> loaded_;
    size_t appended_ = 0;
};

} // namespace r2u::bmc

#endif // R2U_BMC_JOURNAL_HH
