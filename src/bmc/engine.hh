/**
 * @file
 * Parallel + incremental BMC query engine.
 *
 * The paper's synthesis flow dispatches its ~120 independent
 * HBI-hypothesis SVAs onto JasperGold's multi-engine proof farm; this
 * engine is our stand-in. A batch of property queries against one
 * (netlist, unroll options) pair is enqueued and evaluated on a
 * work-stealing thread pool. Two levers make this fast:
 *
 *  - parallelism: queries run concurrently across workers;
 *  - incrementality: each worker keeps one long-lived PropCtx
 *    (solver + unroller) per unroll bound, so the transition-relation
 *    CNF is bit-blasted once per worker and amortized across every
 *    query that worker serves. Per-query constraints are isolated
 *    behind an activation literal and solved via solve(assumptions),
 *    so queries never contaminate the shared CNF prefix — and learnt
 *    clauses carry over between queries for free.
 *
 * Results come back in enqueue order regardless of completion order,
 * so callers see deterministic output. jobs=1 falls back to the
 * classic sequential path (a fresh solver per query), which is the
 * reference behavior the parallel path must match verdict-for-verdict.
 */

#ifndef R2U_BMC_ENGINE_HH
#define R2U_BMC_ENGINE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "bmc/checker.hh"
#include "bmc/journal.hh"
#include "common/thread_pool.hh"
#include "netlist/coi.hh"

namespace r2u::bmc
{

struct Query;

/**
 * How much independent cross-checking each definite verdict gets
 * (trust-but-verify; see bmc/validate.hh):
 *  - Off: verdicts are taken at face value.
 *  - Replay: every Refuted verdict's counterexample is replayed
 *    through sim::Simulator and a fresh pinned monitor context.
 *  - Sample: Replay, plus every Nth Proven verdict (by batch index,
 *    deterministic) is re-solved in a fresh non-incremental context.
 *  - Full: Replay, plus *every* Proven verdict is re-solved.
 */
enum class ValidateMode : uint8_t { Off, Replay, Sample, Full };

const char *validateModeName(ValidateMode mode);

/**
 * Which solve a fault-injection hook is intercepting: the primary
 * (possibly incremental) solve, or a quarantine/re-check fresh solve.
 * Test seam only — lets tests corrupt a verdict or trace at a precise
 * point and prove the validation layer catches it.
 */
enum class SolveStage : uint8_t { Primary, Quarantine };

/**
 * Proof-engine selection for queries that provide a frame-local
 * property (Query::frameProp):
 *  - Bmc: incumbent bounded model checking only (reference behavior).
 *  - KInduction: k-induction only (base case supplies the bounded
 *    verdict; a closed step upgrades it to unbounded).
 *  - Pdr: IC3/PDR only (see bmc/pdr.hh).
 *  - Race: per query, PDR and k-induction race the incumbent BMC
 *    solve; the first definitive verdict wins and interrupts the
 *    others. Challengers only ever win with Proven-class verdicts —
 *    refutations are always materialized by BMC, which owns trace
 *    fidelity — so the synthesized model stays bit-identical to
 *    --engine bmc at any jobs count.
 * Queries without frameProp always run plain BMC.
 */
enum class EngineChoice : uint8_t { Bmc, KInduction, Pdr, Race };

const char *engineChoiceName(EngineChoice choice);

struct EngineOptions
{
    /** Worker count; 0 means std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Default solver conflict budget per query (<0: unlimited). */
    int64_t conflictBudget = -1;
    /** Solver propagation budget per query (<0: unlimited). */
    int64_t propagationBudget = -1;
    /** Per-query wall-clock deadline in seconds (<0: none). */
    double querySeconds = -1.0;
    /**
     * Total wall-clock deadline in seconds, measured from Engine
     * construction so it spans every drain() of a synthesis run
     * (<0: none). When it passes, in-flight solves stop (their
     * per-solve deadline is clamped to the remaining total) and
     * still-queued queries come back Cancelled.
     */
    double totalSeconds = -1.0;
    /**
     * Retry-with-escalating-budget policy: when > 1, a query that
     * comes back Unknown from its conflict/propagation budget or its
     * per-query deadline is re-solved with every budget multiplied by
     * this factor per retry (cheap first pass, escalate the
     * stragglers). <= 1 disables retries. TotalDeadline, Cancelled,
     * and Interrupted Unknowns are never retried.
     */
    double retryEscalation = 0.0;
    /** Maximum escalated retries per query. */
    unsigned maxRetries = 3;

    /**
     * Verdict validation policy. The default replays every
     * counterexample (cheap — one simulator run + one pinned solve on
     * an already-satisfiable cone) and spot-checks a deterministic
     * sample of proofs. See ValidateMode.
     */
    ValidateMode validate = ValidateMode::Sample;
    /** Sample mode: re-check every Nth Proven verdict (min 1). */
    unsigned validateSampleN = 8;
    /**
     * Optional crash-safe run journal (owned by the caller, must
     * outlive the engine). Definite verdicts are appended after
     * validation; journaled queries found at drain() time are answered
     * without solving. nullptr disables journaling.
     */
    Journal *journal = nullptr;
    /**
     * Optional cross-run verdict cache (owned by the caller, must
     * outlive the engine). Queries whose contentHash matches a cached
     * record are answered without solving; new definite verdicts are
     * appended keyed by their contentHash. Queries with contentHash 0
     * never consult or populate the cache. nullptr disables caching.
     */
    VerdictCache *cache = nullptr;
    /**
     * When non-empty, each refutation's replayed trace is dumped as a
     * VCD waveform under this directory (created on demand) with a
     * deterministic per-query filename.
     */
    std::string cexVcdDir;
    /**
     * Fault-injection test seam: called after the primary solve and
     * after every quarantine/re-check solve, free to corrupt the
     * result in place. Must be thread-safe at jobs > 1. Production
     * runs leave this empty.
     */
    std::function<void(const Query &, CheckResult &, SolveStage)>
        faultHook;

    // --- SAT portfolio (parallel incremental path only) ---
    /**
     * Race each query across diversified solver configurations: the
     * worker's incumbent incremental context plus portfolioRacers-1
     * fresh challengers solving a snapshot of the same CNF (identical
     * variable numbering) under the same activation assumption. The
     * first definitive verdict wins and interrupts the rest.
     * Verdicts are race-independent — every racer decides the same
     * formula — so the synthesized model stays bit-identical at any
     * jobs count whether or not the portfolio is on. Ignored on the
     * jobs=1 reference path.
     */
    bool portfolio = false;
    /** Total racers per query (incumbent + challengers), min 2. */
    unsigned portfolioRacers = 3;
    /**
     * Cross-racer learnt-clause sharing through a bounded pool: every
     * racer publishes low-LBD learnts and imports the others' at
     * restart boundaries. All racers decide the same clause database,
     * so shared learnts are implicates of it and sound in either
     * direction. Off: racers search independently (fully deterministic
     * per-racer search).
     */
    bool shareClauses = true;
    /**
     * CNF simplification: periodic in-search simplifyDB() passes in
     * every solver, plus SatELite-style preprocessing (bounded variable
     * elimination + subsumption, with model reconstruction) of each
     * portfolio challenger's snapshot. Off (--no-inprocess): solvers
     * search the raw CNF.
     */
    bool inprocess = true;
    /** Base solver configuration for every context (restart policy,
     *  reduction ranking, ...). inprocess=false zeroes its
     *  inprocessPeriod. */
    sat::SolverConfig solverConfig;

    /**
     * Proof-engine selection for frame-local queries (see
     * EngineChoice). The default races IC3/PDR and k-induction against
     * the incumbent BMC solve, harvesting unbounded proofs when the
     * challengers converge first.
     */
    EngineChoice engine = EngineChoice::Race;
};

/** One property query in a batch. */
struct Query
{
    std::string name; ///< label for debug logging
    PropertyFn prop;
    /** Unroll bound; 0 uses the engine default. */
    unsigned bound = 0;
    /** Conflict budget; kInheritBudget uses the engine default. */
    int64_t conflictBudget = kInheritBudget;

    /**
     * Seed state elements the property reads (optional). Demand-driven
     * unrolling slices to the cone automatically; declaring the seeds
     * up front additionally reports the static COI size (cells/mems)
     * for this query through CheckResult, the analogue of JasperGold's
     * "COI reduction" log line.
     */
    nl::CoiSeeds seeds;

    /**
     * Content-derived identity of this query: a hash of its COI slice,
     * property encoding, and bound (see nl::coneHash and the synthesis
     * frontend's per-query hashing). Mixed into the journal key so an
     * edited property or rewired cone cannot resume a stale verdict,
     * and used verbatim as the verdict-cache key. 0 means "unhashed":
     * the journal key degrades to name+bound (still guarded by the
     * journal's config hash) and the cache is bypassed entirely.
     */
    uint64_t contentHash = 0;

    /**
     * Bound-independent content identity: contentHash with the bound
     * left out of the mix. Unbounded Proven verdicts (PDR convergence,
     * closed induction) are keyed by this too, so a journal/cache hit
     * can satisfy the same cone + property at *any* bound. 0 means
     * "unhashed" (no unbounded reuse).
     */
    uint64_t baseHash = 0;

    /**
     * Frame-local formulation of the property (optional): returns the
     * "bad at this frame" literal reading only frame f and frame-f
     * inputs. When set and EngineOptions::engine != Bmc, the query is
     * eligible for the k-induction/PDR proof engines; `prop` must be
     * its bounded equivalent (the OR of frameProp over every frame of
     * the bound), which the engines' verdicts are aligned with.
     */
    FramePropertyFn frameProp;

    static constexpr int64_t kInheritBudget = INT64_MIN;
};

struct EngineStats
{
    uint64_t queries = 0;
    /** Incremental contexts built (== transition-relation unrolls). */
    uint64_t contexts = 0;
    /**
     * Contexts warm-started from a sibling's bit-blasted CNF
     * (PropCtx::seedFrom) instead of re-encoding the transition
     * relation from the netlist.
     */
    uint64_t contextsSeeded = 0;
    uint64_t steals = 0;
    /** Sum of per-query CNF growth across the batch(es). */
    uint64_t cnfVarsAdded = 0;
    uint64_t cnfClausesAdded = 0;
    /** Escalated re-solves across the batch(es). */
    uint64_t retries = 0;
    /** Queries whose final verdict stayed Unknown. */
    uint64_t unknowns = 0;

    // --- trust-but-verify validation (see ValidateMode) ---
    /** Counterexample replays (sim + pinned monitor re-check). */
    uint64_t replays = 0;
    /** Fresh non-incremental proof re-solves. */
    uint64_t proofRechecks = 0;
    /** Proof re-checks that came back Unknown (primary verdict kept). */
    uint64_t recheckInconclusive = 0;
    /** Primary-vs-validation disagreements (quarantined). */
    uint64_t validationMismatches = 0;
    /** Verdicts degraded to Unknown(ValidationFailed). */
    uint64_t validationFailures = 0;
    /** Queries answered from the resume journal without solving. */
    uint64_t journalHits = 0;
    /** Verdicts durably appended to the journal this run. */
    uint64_t journalAppends = 0;
    /** Queries answered from the cross-run verdict cache. */
    uint64_t cacheHits = 0;
    /** Hashed queries the cache could not answer. */
    uint64_t cacheMisses = 0;
    /** Misses where the cache held the same query under a different
     *  content key — i.e. its cone/property changed since caching. */
    uint64_t cacheInvalidations = 0;
    /** Verdicts physically appended to the verdict cache this run. */
    uint64_t cacheAppends = 0;
    double replaySeconds = 0.0;
    double recheckSeconds = 0.0;
    /** Total validation wall time (replays + re-checks + policy). */
    double validateSeconds = 0.0;

    // --- SAT portfolio / simplification (see EngineOptions) ---
    /** Queries that ran a portfolio race. */
    uint64_t portfolioRaces = 0;
    /** Races a challenger (not the incumbent) won. */
    uint64_t portfolioChallengerWins = 0;
    /** Learnt clauses published to race pools across the batch(es). */
    uint64_t sharedExported = 0;
    /** Learnt clauses imported from race pools. */
    uint64_t sharedImported = 0;
    /** Variables eliminated by challenger CNF preprocessing. */
    uint64_t preprocessVarsEliminated = 0;
    /** Clauses dropped by challenger CNF preprocessing. */
    uint64_t preprocessClausesRemoved = 0;
    /** In-search simplifyDB() passes across all queries. */
    uint64_t inprocessRuns = 0;
    /** Clauses removed by those passes. */
    uint64_t inprocessClausesRemoved = 0;

    // --- proof-engine race (see EngineChoice) ---
    /** Queries that raced PDR/k-induction against BMC. */
    uint64_t engineRaces = 0;
    /** Verdicts produced by plain BMC (incumbent or only engine). */
    uint64_t bmcWins = 0;
    /** Verdicts produced by k-induction. */
    uint64_t kindWins = 0;
    /** Verdicts produced by IC3/PDR. */
    uint64_t pdrWins = 0;
    /** Proven verdicts valid at every bound, not just the query's. */
    uint64_t unboundedProofs = 0;
    /** Sum of PDR frame levels cleared across the batch(es). */
    uint64_t pdrFrames = 0;
    /** Sum of PDR proof obligations processed. */
    uint64_t pdrObligations = 0;
};

class Engine
{
  public:
    Engine(const nl::Netlist &netlist,
           const std::unordered_map<std::string, nl::CellId> &signals,
           Unroller::Options options, unsigned bound,
           EngineOptions engine_options = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    const EngineStats &stats() const { return stats_; }

    /** The options this engine was constructed with. */
    const EngineOptions &options() const { return eopts_; }

    /**
     * Asynchronously stop the engine: in-flight solves return Unknown
     * (Interrupted) at their next stop check and still-queued queries
     * come back Cancelled. Safe to call from any thread; sticky until
     * clearInterrupt().
     */
    void interrupt() { cancel_.store(true, std::memory_order_relaxed); }

    void clearInterrupt()
    {
        cancel_.store(false, std::memory_order_relaxed);
    }

    bool interrupted() const
    {
        return cancel_.load(std::memory_order_relaxed);
    }

    /** Add a query to the pending batch; returns its batch index. */
    size_t enqueue(Query query);

    /**
     * Evaluate every pending query and return their results in
     * enqueue order. The batch is cleared; the engine (pool, worker
     * contexts, learnt clauses) stays warm for the next batch. If a
     * property callback threw, the first exception (in enqueue order)
     * is rethrown after the batch settles.
     */
    std::vector<CheckResult> drain();

  private:
    struct Worker;

    CheckResult runIncremental(Worker &worker, const Query &query);
    CheckResult runFresh(const Query &query);
    /**
     * Single-engine KInduction/Pdr path for a frame-local query
     * (EngineOptions::engine). PDR refutations are concretized through
     * a plain BMC re-solve (guaranteed Sat at the bound) so the trace
     * machinery — replay, VCD, quarantine — works unchanged.
     */
    CheckResult runProofEngine(const Query &query);
    /**
     * Race the incumbent context against diversified challengers on a
     * snapshot of its CNF (one attempt, under @p limits). Returns the
     * first definitive result (the incumbent's honest Unknown when
     * nobody wins) and fills the portfolio counters of @p result. A
     * SAT-winning challenger's model is adopted into the incumbent so
     * extractTrace() works unchanged.
     */
    sat::Result racePortfolio(PropCtx &ctx, const SolveLimits &limits,
                              CheckResult &result);
    /** Diversified config for challenger @p racer (1-based). */
    sat::SolverConfig challengerConfig(unsigned racer) const;
    void fillCoiStats(const Query &query, CheckResult &result) const;

    /**
     * Everything between "the solver answered" and "the caller sees
     * the result": fault-injection seam, verdict validation per
     * EngineOptions::validate (with quarantine + degradation on
     * mismatch), and the journal append. Thread-safe; runs on the
     * worker that solved the query.
     */
    void postProcess(size_t index, const Query &query,
                     CheckResult &result);
    /** @p recheck_proof: spot-check this Proven verdict too? */
    void validateResult(const Query &query, CheckResult &result,
                        bool recheck_proof);
    /**
     * Fresh, non-incremental re-solve of a query. @p warm_ok allows
     * warm-starting the CNF from the published context seed (used for
     * routine proof spot-checks, where the value of the re-solve is an
     * uncontaminated search); the mismatch quarantine path passes
     * false and pays for a fully independent re-encoding.
     */
    CheckResult quarantineSolve(const Query &query, bool warm_ok);
    /** Published warm-start seed for @p bound (nullptr if none). */
    const PropCtx *seedFor(unsigned bound);
    /** Deterministic VCD path for a query's counterexample ("" if
     *  --cex-vcd is off). */
    std::string vcdPathFor(const Query &query) const;
    /** Answer journaled queries in-place; marks them done. */
    void resolveFromJournal(const std::vector<Query> &batch,
                            std::vector<CheckResult> &results,
                            std::vector<char> &done);
    /** Answer content-cached queries in-place; marks them done and
     *  tallies the miss/invalidation counters (single-threaded). */
    void resolveFromCache(const std::vector<Query> &batch,
                          std::vector<CheckResult> &results,
                          std::vector<char> &done);

    /** retryEscalation^attempt (1.0 when escalation is disabled). */
    double escFactor(unsigned attempt) const;

    /**
     * Compute the solve limits for one attempt of a query. Returns
     * false when the query must not be solved at all (engine
     * interrupted, or the total deadline already passed);
     * @p total_binding reports whether the clamped total deadline —
     * rather than the per-query one — is the effective deadline.
     */
    bool attemptLimits(const Query &query, unsigned attempt,
                       SolveLimits &limits, bool &total_binding) const;

    /** Retry policy: escalate this Unknown? (see EngineOptions). */
    bool shouldRetry(const CheckResult &result, unsigned attempt) const;

    /**
     * Warm-start seed registry: the first worker to build a context
     * for a bound publishes an immutable snapshot of it right after
     * its first query's CNF construction; workers arriving later
     * clone the snapshot (PropCtx::seedFrom) instead of bit-blasting
     * the transition relation again. `building` marks the designated
     * builder so latecomers wait on seed_cv_ for the snapshot rather
     * than redundantly encoding in parallel.
     */
    struct SeedSlot
    {
        bool building = false;
        std::unique_ptr<const PropCtx> seed;
    };
    /** Publish a snapshot of @p ctx if this worker is the designated
     *  builder for @p bound (no-op otherwise). */
    void maybePublishSeed(Worker &worker, PropCtx &ctx, unsigned bound);
    /** Builder failed before publishing: hand the role to a waiter. */
    void abandonSeed(Worker &worker, unsigned bound);

    const nl::Netlist &nl_;
    const std::unordered_map<std::string, nl::CellId> &signals_;
    Unroller::Options options_;
    unsigned bound_;
    EngineOptions eopts_;
    unsigned jobs_;
    /** eopts_.solverConfig with the inprocess switch folded in. */
    sat::SolverConfig base_config_;

    std::atomic<bool> cancel_{false};
    bool has_total_deadline_ = false;
    std::chrono::steady_clock::time_point total_deadline_;

    std::vector<Query> batch_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<ThreadPool> pool_;
    EngineStats stats_;

    std::mutex seed_mu_;
    std::condition_variable seed_cv_;
    std::map<unsigned, SeedSlot> seeds_;
};

/** 0 -> hardware_concurrency() (>= 1); otherwise the value itself. */
unsigned resolveJobs(unsigned requested);

} // namespace r2u::bmc

#endif // R2U_BMC_ENGINE_HH
