#include "bmc/unroller.hh"

#include "common/logging.hh"

namespace r2u::bmc
{

using nl::CellId;
using nl::CellKind;
using sat::Lit;
using sat::Word;

Unroller::Unroller(const nl::Netlist &netlist, sat::CnfBuilder &cnf,
                   Options options)
    : nl_(netlist), cnf_(cnf), options_(std::move(options))
{
    nl_.validate();
}

void
Unroller::ensureFrames(unsigned n)
{
    while (frames() < n)
        buildFrame(frames());
}

const Word &
Unroller::wire(unsigned frame, CellId cell)
{
    ensureFrames(frame + 1);
    return wires_[frame][cell];
}

const Word &
Unroller::memWord(unsigned frame, nl::MemId mem, unsigned addr)
{
    ensureFrames(frame + 1);
    R2U_ASSERT(addr < nl_.memory(mem).depth, "memWord addr out of range");
    return mems_[frame][mem][addr];
}

Bits
Unroller::wireValue(unsigned frame, CellId cell)
{
    return cnf_.modelWord(wire(frame, cell));
}

Word
Unroller::readMem(unsigned frame, nl::MemId mem, const Word &addr)
{
    const nl::Memory &m = nl_.memory(mem);
    // Compare only the low address bits (power-of-two wrap, matching
    // the simulator's modulo semantics).
    unsigned abits = m.abits;
    Word a = addr.size() > abits ? sat::CnfBuilder::sliceW(addr, 0, abits)
                                 : addr;
    if (a.size() < abits)
        a = sat::CnfBuilder::zextW(a, abits, cnf_.falseLit());
    Word result = cnf_.constWord(m.width, 0);
    for (unsigned i = 0; i < m.depth; i++) {
        Lit sel = cnf_.mkEqW(a, cnf_.constWord(abits, i));
        result = cnf_.mkMuxW(sel, mems_[frame][mem][i], result);
    }
    return result;
}

void
Unroller::buildFrame(unsigned f)
{
    R2U_ASSERT(f == frames(), "frames must be built in order");
    wires_.emplace_back(nl_.numCells());
    mems_.emplace_back();

    // Memory contents at the start of this frame.
    auto &frame_mems = mems_.back();
    frame_mems.resize(nl_.numMemories());
    for (size_t m = 0; m < nl_.numMemories(); m++) {
        const nl::Memory &mem = nl_.memory(static_cast<nl::MemId>(m));
        auto &arr = frame_mems[m];
        arr.resize(mem.depth);
        if (f == 0) {
            bool symbolic = !options_.concreteInit ||
                            options_.symbolicMems.count(mem.id) > 0;
            auto init_it = options_.memInit.find(mem.id);
            for (unsigned a = 0; a < mem.depth; a++) {
                if (init_it != options_.memInit.end() &&
                    a < init_it->second.size()) {
                    arr[a] = cnf_.constWord(init_it->second[a]);
                } else if (symbolic) {
                    arr[a] = cnf_.freshWord(mem.width);
                } else {
                    arr[a] = cnf_.constWord(mem.init[a]);
                }
            }
        } else {
            // Apply the previous frame's write ports in order (later
            // ports take priority, matching the simulator).
            auto &prev = mems_[f - 1][m];
            for (unsigned a = 0; a < mem.depth; a++)
                arr[a] = prev[a];
            for (CellId port : mem.writePorts) {
                const nl::Cell &c = nl_.cell(port);
                const Word &addr = wires_[f - 1][c.inputs[0]];
                const Word &data = wires_[f - 1][c.inputs[1]];
                Lit en = wires_[f - 1][c.inputs[2]][0];
                unsigned abits = mem.abits;
                Word a = addr.size() > abits
                             ? sat::CnfBuilder::sliceW(addr, 0, abits)
                             : addr;
                if (a.size() < abits)
                    a = sat::CnfBuilder::zextW(a, abits,
                                               cnf_.falseLit());
                for (unsigned i = 0; i < mem.depth; i++) {
                    Lit hit = cnf_.mkAnd(
                        en, cnf_.mkEqW(a, cnf_.constWord(abits, i)));
                    arr[i] = cnf_.mkMuxW(hit, data, arr[i]);
                }
            }
        }
    }

    auto &w = wires_.back();

    // Sequential/source cells first.
    for (size_t i = 0; i < nl_.numCells(); i++) {
        const nl::Cell &c = nl_.cell(static_cast<CellId>(i));
        switch (c.kind) {
          case CellKind::Const:
            w[i] = cnf_.constWord(c.value);
            break;
          case CellKind::Input:
            w[i] = cnf_.freshWord(c.width);
            break;
          case CellKind::Dff:
            if (f == 0) {
                w[i] = options_.concreteInit ? cnf_.constWord(c.value)
                                             : cnf_.freshWord(c.width);
            } else {
                const Word &d = wires_[f - 1][c.inputs[0]];
                const Word &q = wires_[f - 1][i];
                Lit en = wires_[f - 1][c.inputs[1]][0];
                w[i] = cnf_.mkMuxW(en, d, q);
            }
            break;
          default:
            break;
        }
    }

    // Combinational cells in topological order.
    for (CellId id : nl_.topoOrder()) {
        const nl::Cell &c = nl_.cell(id);
        auto in = [&](size_t k) -> const Word & {
            return w[c.inputs[k]];
        };
        switch (c.kind) {
          case CellKind::Add:
            w[id] = cnf_.mkAddW(in(0), in(1));
            break;
          case CellKind::Sub:
            w[id] = cnf_.mkSubW(in(0), in(1));
            break;
          case CellKind::And:
            w[id] = cnf_.mkAndW(in(0), in(1));
            break;
          case CellKind::Or:
            w[id] = cnf_.mkOrW(in(0), in(1));
            break;
          case CellKind::Xor:
            w[id] = cnf_.mkXorW(in(0), in(1));
            break;
          case CellKind::Not:
            w[id] = cnf_.mkNotW(in(0));
            break;
          case CellKind::Mux:
            w[id] = cnf_.mkMuxW(in(0)[0], in(1), in(2));
            break;
          case CellKind::Eq:
            w[id] = {cnf_.mkEqW(in(0), in(1))};
            break;
          case CellKind::Ult:
            w[id] = {cnf_.mkUltW(in(0), in(1))};
            break;
          case CellKind::Slt:
            w[id] = {cnf_.mkSltW(in(0), in(1))};
            break;
          case CellKind::RedOr:
            w[id] = {cnf_.mkRedOrW(in(0))};
            break;
          case CellKind::RedAnd:
            w[id] = {cnf_.mkRedAndW(in(0))};
            break;
          case CellKind::Shl:
            w[id] = cnf_.mkShlW(in(0), in(1));
            break;
          case CellKind::Lshr:
            w[id] = cnf_.mkLshrW(in(0), in(1));
            break;
          case CellKind::Ashr:
            w[id] = cnf_.mkAshrW(in(0), in(1));
            break;
          case CellKind::Concat: {
            Word acc;
            for (size_t k = c.inputs.size(); k-- > 0;) {
                const Word &part = w[c.inputs[k]];
                acc.insert(acc.end(), part.begin(), part.end());
            }
            w[id] = std::move(acc);
            break;
          }
          case CellKind::Slice:
            w[id] = sat::CnfBuilder::sliceW(in(0), c.lo, c.width);
            break;
          case CellKind::Zext:
            w[id] = sat::CnfBuilder::zextW(in(0), c.width,
                                           cnf_.falseLit());
            break;
          case CellKind::Sext:
            w[id] = sat::CnfBuilder::sextW(in(0), c.width);
            break;
          case CellKind::MemRead:
            w[id] = readMem(f, c.mem, in(0));
            break;
          default:
            panic("unexpected cell kind in topo order");
        }
    }
}

} // namespace r2u::bmc
