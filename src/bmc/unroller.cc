#include "bmc/unroller.hh"

#include "common/logging.hh"

namespace r2u::bmc
{

using nl::CellId;
using nl::CellKind;
using nl::MemId;
using sat::Lit;
using sat::Word;

Unroller::Unroller(const nl::Netlist &netlist, sat::CnfBuilder &cnf,
                   Options options)
    : nl_(netlist), cnf_(cnf), options_(std::move(options))
{
    nl_.validate();
}

void
Unroller::ensureFrames(unsigned n)
{
    while (frames() < n) {
        unsigned f = frames();
        wires_.emplace_back(nl_.numCells());
        mems_.emplace_back(nl_.numMemories());
        mem_built_.emplace_back(nl_.numMemories(), 0);
        if (options_.fullUnroll)
            buildFrameEager(f);
    }
}

void
Unroller::adoptState(const Unroller &other)
{
    R2U_ASSERT(&nl_ == &other.nl_,
               "adoptState across different netlists");
    R2U_ASSERT(options_.fullUnroll == other.options_.fullUnroll &&
                   options_.concreteInit == other.options_.concreteInit,
               "adoptState across different unroll options");
    wires_ = other.wires_;
    mems_ = other.mems_;
    mem_built_ = other.mem_built_;
    stats_ = other.stats_;
}

const Word &
Unroller::wire(unsigned frame, CellId cell)
{
    ensureFrames(frame + 1);
    if (wires_[frame][cell].empty())
        demand(frame, cell, false);
    return wires_[frame][cell];
}

const Word &
Unroller::memWord(unsigned frame, MemId mem, unsigned addr)
{
    ensureFrames(frame + 1);
    R2U_ASSERT(addr < nl_.memory(mem).depth, "memWord addr out of range");
    if (!mem_built_[frame][mem])
        demand(frame, mem, true);
    return mems_[frame][mem][addr];
}

Bits
Unroller::wireValue(unsigned frame, CellId cell)
{
    return cnf_.modelWord(wire(frame, cell));
}

bool
Unroller::wireMaterialized(unsigned frame, CellId cell) const
{
    return frame < frames() && !wires_[frame][cell].empty();
}

bool
Unroller::memMaterialized(unsigned frame, MemId mem) const
{
    return frame < frames() && mem_built_[frame][mem] != 0;
}

bool
Unroller::memEverMaterialized(MemId mem) const
{
    for (unsigned f = 0; f < frames(); f++)
        if (mem_built_[f][mem])
            return true;
    return false;
}

/**
 * Iterative post-order construction of the requested cone: the first
 * visit of a task pushes its unbuilt dependencies, the second visit
 * (everything below it memoized) builds it. Registers chase their D/EN
 * inputs and previous value into frame-1; memory arrays chase the
 * previous array plus every write port's inputs into frame-1; frame 0
 * state is a leaf.
 */
void
Unroller::demand(unsigned frame, int id, bool is_mem)
{
    auto built = [&](const DemandTask &t) {
        return t.isMem ? mem_built_[t.frame][t.id] != 0
                       : !wires_[t.frame][t.id].empty();
    };

    std::vector<DemandTask> stack;
    stack.push_back({frame, id, is_mem, false});
    while (!stack.empty()) {
        DemandTask t = stack.back();
        if (built(t)) {
            stack.pop_back();
            continue;
        }
        if (t.expanded) {
            if (t.isMem)
                buildMemArray(t.frame, t.id);
            else
                buildWire(t.frame, t.id);
            stack.pop_back();
            continue;
        }
        stack.back().expanded = true;
        pushDeps(stack, t);
    }
}

void
Unroller::pushDeps(std::vector<DemandTask> &stack, const DemandTask &t)
{
    auto needWire = [&](unsigned f, CellId c) {
        if (wires_[f][c].empty())
            stack.push_back({f, c, false, false});
    };
    auto needMem = [&](unsigned f, MemId m) {
        if (!mem_built_[f][m])
            stack.push_back({f, m, true, false});
    };

    if (t.isMem) {
        if (t.frame == 0)
            return;
        needMem(t.frame - 1, t.id);
        for (CellId port : nl_.memory(t.id).writePorts) {
            const nl::Cell &c = nl_.cell(port);
            needWire(t.frame - 1, c.inputs[0]); // addr
            needWire(t.frame - 1, c.inputs[1]); // data
            needWire(t.frame - 1, c.inputs[2]); // en
        }
        return;
    }

    const nl::Cell &c = nl_.cell(t.id);
    switch (c.kind) {
      case CellKind::Const:
      case CellKind::Input:
        break;
      case CellKind::Dff:
        if (t.frame > 0) {
            needWire(t.frame - 1, c.inputs[0]); // D
            needWire(t.frame - 1, c.inputs[1]); // EN
            needWire(t.frame - 1, t.id);        // previous Q
        }
        break;
      case CellKind::MemRead:
        needWire(t.frame, c.inputs[0]); // addr
        needMem(t.frame, c.mem);
        break;
      case CellKind::MemWrite:
        panic("MemWrite cell %d demanded as a wire", t.id);
      default:
        for (CellId in : c.inputs)
            needWire(t.frame, in);
    }
}

sat::Word
Unroller::normAddr(const Word &addr, unsigned abits)
{
    // Compare only the low address bits (power-of-two wrap, matching
    // the simulator's modulo semantics).
    Word a = addr.size() > abits ? sat::CnfBuilder::sliceW(addr, 0, abits)
                                 : addr;
    if (a.size() < abits)
        a = sat::CnfBuilder::zextW(a, abits, cnf_.falseLit());
    return a;
}

Word
Unroller::readMem(unsigned frame, MemId mem, const Word &addr)
{
    const nl::Memory &m = nl_.memory(mem);
    Word a = normAddr(addr, m.abits);
    const auto &arr = mems_[frame][mem];

    // One-hot decode shared with the write ports (via the gate cache),
    // then a clause-encoded select per output bit. Decoded indices
    // >= depth select nothing, so unbacked addresses read 0 as before.
    std::vector<Lit> onehot = cnf_.mkDecodeW(a);
    return cnf_.mkSelectW(onehot, arr, m.width);
}

void
Unroller::buildMemArray(unsigned f, MemId m)
{
    const nl::Memory &mem = nl_.memory(m);
    auto &arr = mems_[f][m];
    arr.resize(mem.depth);

    if (f == 0) {
        bool symbolic = !options_.concreteInit ||
                        options_.symbolicMems.count(mem.id) > 0;
        auto init_it = options_.memInit.find(mem.id);
        for (unsigned a = 0; a < mem.depth; a++) {
            if (init_it != options_.memInit.end() &&
                a < init_it->second.size()) {
                arr[a] = cnf_.constWord(init_it->second[a]);
            } else if (symbolic) {
                arr[a] = cnf_.freshWord(mem.width);
            } else {
                arr[a] = cnf_.constWord(mem.init[a]);
            }
        }
    } else {
        // Apply the previous frame's write ports in order (later
        // ports take priority, matching the simulator).
        auto &prev = mems_[f - 1][m];
        for (unsigned a = 0; a < mem.depth; a++)
            arr[a] = prev[a];
        for (CellId port : mem.writePorts) {
            const nl::Cell &c = nl_.cell(port);
            const Word &addr = wires_[f - 1][c.inputs[0]];
            const Word &data = wires_[f - 1][c.inputs[1]];
            Lit en = wires_[f - 1][c.inputs[2]][0];
            Word a = normAddr(addr, mem.abits);
            std::vector<Lit> onehot = cnf_.mkDecodeW(a);
            for (unsigned i = 0; i < mem.depth; i++) {
                Lit hit = cnf_.mkAnd(en, onehot[i]);
                arr[i] = cnf_.mkMuxW(hit, data, arr[i]);
            }
        }
    }

    mem_built_[f][m] = 1;
    stats_.memArraysBuilt++;
    stats_.memWordsBuilt += mem.depth;
}

void
Unroller::buildWire(unsigned f, CellId id)
{
    const nl::Cell &c = nl_.cell(id);
    auto &w = wires_[f];
    auto in = [&](size_t k) -> const Word & {
        return w[c.inputs[k]];
    };

    Word out;
    switch (c.kind) {
      case CellKind::Const:
        out = cnf_.constWord(c.value);
        break;
      case CellKind::Input: {
        const Bits *pin = nullptr;
        if (f < options_.inputValues.size()) {
            auto it = options_.inputValues[f].find(id);
            if (it != options_.inputValues[f].end())
                pin = &it->second;
        }
        out = pin ? cnf_.constWord(*pin) : cnf_.freshWord(c.width);
        break;
      }
      case CellKind::Dff:
        if (f == 0) {
            if (options_.concreteInit) {
                out = cnf_.constWord(c.value);
            } else {
                auto it = options_.regInit.find(id);
                out = it != options_.regInit.end()
                          ? cnf_.constWord(it->second)
                          : cnf_.freshWord(c.width);
            }
        } else {
            const Word &d = wires_[f - 1][c.inputs[0]];
            const Word &q = wires_[f - 1][id];
            Lit en = wires_[f - 1][c.inputs[1]][0];
            out = cnf_.mkMuxW(en, d, q);
        }
        break;
      case CellKind::Add:
        out = cnf_.mkAddW(in(0), in(1));
        break;
      case CellKind::Sub:
        out = cnf_.mkSubW(in(0), in(1));
        break;
      case CellKind::And:
        out = cnf_.mkAndW(in(0), in(1));
        break;
      case CellKind::Or:
        out = cnf_.mkOrW(in(0), in(1));
        break;
      case CellKind::Xor:
        out = cnf_.mkXorW(in(0), in(1));
        break;
      case CellKind::Not:
        out = cnf_.mkNotW(in(0));
        break;
      case CellKind::Mux:
        out = cnf_.mkMuxW(in(0)[0], in(1), in(2));
        break;
      case CellKind::Eq:
        out = {cnf_.mkEqW(in(0), in(1))};
        break;
      case CellKind::Ult:
        out = {cnf_.mkUltW(in(0), in(1))};
        break;
      case CellKind::Slt:
        out = {cnf_.mkSltW(in(0), in(1))};
        break;
      case CellKind::RedOr:
        out = {cnf_.mkRedOrW(in(0))};
        break;
      case CellKind::RedAnd:
        out = {cnf_.mkRedAndW(in(0))};
        break;
      case CellKind::Shl:
        out = cnf_.mkShlW(in(0), in(1));
        break;
      case CellKind::Lshr:
        out = cnf_.mkLshrW(in(0), in(1));
        break;
      case CellKind::Ashr:
        out = cnf_.mkAshrW(in(0), in(1));
        break;
      case CellKind::Concat: {
        for (size_t k = c.inputs.size(); k-- > 0;) {
            const Word &part = w[c.inputs[k]];
            out.insert(out.end(), part.begin(), part.end());
        }
        break;
      }
      case CellKind::Slice:
        out = sat::CnfBuilder::sliceW(in(0), c.lo, c.width);
        break;
      case CellKind::Zext:
        out = sat::CnfBuilder::zextW(in(0), c.width, cnf_.falseLit());
        break;
      case CellKind::Sext:
        out = sat::CnfBuilder::sextW(in(0), c.width);
        break;
      case CellKind::MemRead:
        out = readMem(f, c.mem, in(0));
        break;
      case CellKind::MemWrite:
        panic("MemWrite cell %d built as a wire", id);
    }

    R2U_ASSERT(!out.empty(), "built a zero-width word for cell %d", id);
    stats_.wiresBuilt++;
    w[id] = std::move(out);
}

void
Unroller::buildFrameEager(unsigned f)
{
    // Same construction order as the original eager unroller: all
    // memory arrays, then sources/registers, then combinational cells
    // topologically.
    for (size_t m = 0; m < nl_.numMemories(); m++)
        buildMemArray(f, static_cast<MemId>(m));

    for (size_t i = 0; i < nl_.numCells(); i++) {
        const nl::Cell &c = nl_.cell(static_cast<CellId>(i));
        if (c.kind == CellKind::Const || c.kind == CellKind::Input ||
            c.kind == CellKind::Dff)
            buildWire(f, static_cast<CellId>(i));
    }

    for (CellId id : nl_.topoOrder())
        buildWire(f, id);
}

} // namespace r2u::bmc
