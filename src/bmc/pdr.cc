#include "bmc/pdr.hh"

#include <algorithm>
#include <chrono>
#include <queue>

#include "common/logging.hh"
#include "common/timer.hh"

namespace r2u::bmc
{

using sat::Lit;

namespace
{

/** Extra levels searched for convergence past the BMC bound. */
constexpr unsigned kDefaultExtraFrames = 16;

/**
 * One bit of sequential state in the cone: its current-state (frame 0)
 * and next-state (frame 1) literals and its concrete power-on value
 * (-1 when the initial value is symbolic — free registers under
 * !concreteInit, or a memory listed in Options::symbolicMems).
 */
struct StateBit
{
    Lit cur;
    Lit next;
    int8_t init;
};

/** One literal of a state cube: state-bit index + model polarity. */
struct CubeLit
{
    uint32_t idx;
    bool val;
};

using Cube = std::vector<CubeLit>;

/** Proof obligation: block state cube `cube` at frame `level`. */
struct Obligation
{
    Cube cube;
    unsigned level;
    uint64_t seq; ///< tie-break: FIFO within a level, deterministic
    /**
     * Concrete distance (in transition steps) from this cube's state
     * to the bad state that spawned the chain. Predecessor pushes add
     * one; re-enqueues at a higher level keep it. An obligation chain
     * hitting Init is a real execution whose bad state sits at frame
     * depth + 1 — NOT at the obligation's level, which re-enqueued
     * obligations have already outgrown.
     */
    unsigned depth;
    /**
     * True for obligations descended from a blocked-cube re-enqueue
     * (the push-upward convergence optimization): their Init-hits are
     * counterexamples *deeper* than the level being cleared and must
     * not be reported as frame-level refutations.
     */
    bool opportunistic;
};

struct ObligationOrder
{
    bool
    operator()(const Obligation &a, const Obligation &b) const
    {
        if (a.level != b.level)
            return a.level > b.level; // min-heap on level
        return a.seq > b.seq;
    }
};

class Pdr
{
  public:
    Pdr(const nl::Netlist &netlist,
        const std::unordered_map<std::string, nl::CellId> &signals,
        Unroller::Options options, const nl::CoiSeeds &seeds,
        const FramePropertyFn &prop, const PdrOptions &popts)
        : popts_(popts), init_opts_(options),
          ctx_(netlist, signals,
               [&options] {
                   // The transition relation starts from a symbolic
                   // state; Init is asserted separately behind its own
                   // activation literal so reachability queries can
                   // opt in per frame.
                   Unroller::Options t = options;
                   t.concreteInit = false;
                   t.inputValues.clear();
                   t.regInit.clear();
                   return t;
               }(),
               /*bound=*/2),
          prop_(prop), seeds_(seeds)
    {
        R2U_ASSERT(popts_.bound >= 1, "PDR needs a positive bound");
    }

    PdrResult run();

  private:
    void buildStateAndInit();
    bool stopRequested();
    /** Budgeted solve; Unknown marks stopped_ with the right source. */
    sat::Result solve(std::vector<Lit> assumptions);
    /** Assumptions activating F_level (Init clauses too at level 0). */
    std::vector<Lit> frameAssumptions(unsigned level) const;
    void ensureLevel(unsigned level);
    Cube extractCube();
    /** Does the cube's concrete-init part match Init exactly? */
    bool cubeSatisfiesInit(const Cube &cube) const;
    /** Core-filter + init-repair; result still blocks the cube. */
    Cube generalize(const Cube &cube);
    void addFrameClause(Cube cube, unsigned level);
    /**
     * Block `cube` at `level` via the obligation queue. Returns false
     * when an initial state reaching a bad state was discovered (a
     * counterexample at frame `major`) or the budget ran out
     * (stopped_); true when every obligation was discharged.
     */
    bool blockAll(Cube cube, unsigned level, unsigned major);
    /**
     * Push frame clauses forward after level `k` cleared; true when
     * two consecutive frames converged (inductive invariant found).
     */
    bool propagate(unsigned k);

    const PdrOptions &popts_;
    /** Original options: the concrete-init semantics that define
     *  Init (the transition context itself is symbolic-init). */
    Unroller::Options init_opts_;
    PropCtx ctx_;
    const FramePropertyFn &prop_;
    const nl::CoiSeeds &seeds_;

    std::vector<StateBit> bits_;
    Lit bad_ = sat::kLitUndef;
    Lit act_init_ = sat::kLitUndef;
    std::vector<Lit> acts_; ///< acts_[l]: frame activation, l >= 1

    struct FrameClause
    {
        Cube cube;      ///< blocked cube (clause is its negation)
        unsigned level; ///< member of F_1 .. F_level
    };
    std::vector<FrameClause> clauses_;

    uint64_t obligation_seq_ = 0;
    /** Set when blockAll returns false on a counterexample (not a
     *  budget stop): the frame of the cex's bad state. */
    unsigned cex_depth_ = 0;
    /** Cleared once an opportunistic obligation digs out a deep
     *  counterexample: with a reachable bad state on record, the
     *  push-upward optimization can only rediscover it. */
    bool reenqueue_ = true;
    bool stopped_ = false;
    VerdictSource stop_source_ = VerdictSource::Solve;
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_;

    PdrResult result_;
};

void
Pdr::buildStateAndInit()
{
    const nl::Netlist &nl = ctx_.unroller().netlist();
    sat::CnfBuilder &cnf = ctx_.cnf();

    bool whole_design = seeds_.empty();
    nl::Coi coi;
    if (!whole_design)
        coi = nl::computeCoi(nl, seeds_);

    auto addBit = [&](Lit cur, Lit next, int8_t init) {
        bits_.push_back(StateBit{cur, next, init});
    };

    // Init below mirrors Unroller::buildWire / buildMemArray frame-0
    // semantics exactly: concreteInit takes registers from the
    // power-on value (regInit is a replay override honored only when
    // the initial state is symbolic), and a memInit entry for an
    // address is concrete regardless of symbolicMems/concreteInit.
    for (nl::CellId d : nl.dffs()) {
        if (!whole_design && !coi.hasCell(d))
            continue;
        const sat::Word &cur = ctx_.unroller().wire(0, d);
        const sat::Word &next = ctx_.unroller().wire(1, d);
        const Bits *iv = nullptr;
        if (init_opts_.concreteInit) {
            iv = &nl.cell(d).value;
        } else {
            auto it = init_opts_.regInit.find(d);
            if (it != init_opts_.regInit.end())
                iv = &it->second;
        }
        for (unsigned b = 0; b < cur.size(); b++) {
            int8_t init = -1;
            if (iv && b < iv->width())
                init = iv->bit(b) ? 1 : 0;
            addBit(cur[b], next[b], init);
        }
    }
    for (size_t m = 0; m < nl.numMemories(); m++) {
        nl::MemId mem = static_cast<nl::MemId>(m);
        if (!whole_design && !coi.hasMem(mem))
            continue;
        const nl::Memory &mm = nl.memory(mem);
        bool symbolic = !init_opts_.concreteInit ||
                        init_opts_.symbolicMems.count(mem) > 0;
        auto ov = init_opts_.memInit.find(mem);
        for (unsigned a = 0; a < mm.depth; a++) {
            const sat::Word &cur = ctx_.unroller().memWord(0, mem, a);
            const sat::Word &next = ctx_.unroller().memWord(1, mem, a);
            const Bits *iv = nullptr;
            if (ov != init_opts_.memInit.end() &&
                a < ov->second.size())
                iv = &ov->second[a];
            else if (!symbolic && a < mm.init.size())
                iv = &mm.init[a];
            for (unsigned b = 0; b < cur.size(); b++) {
                int8_t init = -1;
                if (iv && b < iv->width())
                    init = iv->bit(b) ? 1 : 0;
                addBit(cur[b], next[b], init);
            }
        }
    }
    result_.stateBits = bits_.size();

    // Init behind its own activation literal: one guarded unit per
    // concretely initialized state bit. Symbolic bits stay free.
    act_init_ = cnf.freshLit();
    for (const StateBit &sb : bits_) {
        if (sb.init < 0)
            continue;
        ctx_.solver().addClause(~act_init_,
                                sb.init ? sb.cur : ~sb.cur);
    }
}

bool
Pdr::stopRequested()
{
    if (popts_.limits.cancel &&
        popts_.limits.cancel->load(std::memory_order_relaxed)) {
        stop_source_ = VerdictSource::Interrupted;
        return true;
    }
    if (popts_.cancel2 &&
        popts_.cancel2->load(std::memory_order_relaxed)) {
        stop_source_ = VerdictSource::Interrupted;
        return true;
    }
    return false;
}

sat::Result
Pdr::solve(std::vector<Lit> assumptions)
{
    if (stopped_)
        return sat::Result::Unknown;
    if (stopRequested()) {
        stopped_ = true;
        return sat::Result::Unknown;
    }
    sat::Solver &solver = ctx_.solver();
    // Budgets are totals across the whole PDR run: each call gets
    // whatever remains.
    if (popts_.limits.conflicts >= 0) {
        int64_t remaining =
            popts_.limits.conflicts -
            static_cast<int64_t>(solver.stats().conflicts);
        if (remaining <= 0) {
            stopped_ = true;
            stop_source_ = VerdictSource::ConflictBudget;
            return sat::Result::Unknown;
        }
        solver.setConflictBudget(remaining);
    } else {
        solver.setConflictBudget(-1);
    }
    if (popts_.limits.propagations >= 0) {
        int64_t remaining =
            popts_.limits.propagations -
            static_cast<int64_t>(solver.stats().propagations);
        if (remaining <= 0) {
            stopped_ = true;
            stop_source_ = VerdictSource::PropagationBudget;
            return sat::Result::Unknown;
        }
        solver.setPropagationBudget(remaining);
    } else {
        solver.setPropagationBudget(-1);
    }
    if (has_deadline_) {
        double remaining =
            std::chrono::duration<double>(
                deadline_ - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0) {
            stopped_ = true;
            stop_source_ = VerdictSource::QueryDeadline;
            return sat::Result::Unknown;
        }
        solver.setDeadline(remaining);
    }
    sat::Result r = solver.solve(assumptions);
    if (r == sat::Result::Unknown) {
        stopped_ = true;
        stop_source_ = sourceFromStop(solver.stopReason());
    }
    return r;
}

std::vector<Lit>
Pdr::frameAssumptions(unsigned level) const
{
    std::vector<Lit> as;
    as.reserve(acts_.size() + 2);
    if (level == 0)
        as.push_back(act_init_);
    // Monotone frames: clauses(F_i) = clauses at level >= i, so F_i is
    // asserted by activating every level from max(i, 1) up.
    for (unsigned l = std::max(level, 1u); l < acts_.size(); l++)
        as.push_back(acts_[l]);
    return as;
}

void
Pdr::ensureLevel(unsigned level)
{
    if (acts_.empty())
        acts_.push_back(sat::kLitUndef); // level 0 is Init
    while (acts_.size() <= level)
        acts_.push_back(ctx_.cnf().freshLit());
}

Cube
Pdr::extractCube()
{
    sat::Solver &solver = ctx_.solver();
    Cube cube;
    cube.reserve(bits_.size());
    for (uint32_t i = 0; i < bits_.size(); i++)
        cube.push_back(CubeLit{i, solver.modelValue(bits_[i].cur)});
    return cube;
}

bool
Pdr::cubeSatisfiesInit(const Cube &cube) const
{
    for (const CubeLit &cl : cube) {
        int8_t init = bits_[cl.idx].init;
        if (init >= 0 && (init != 0) != cl.val)
            return false;
    }
    return true;
}

Cube
Pdr::generalize(const Cube &cube)
{
    // Keep the literals whose primed copy the solver actually used in
    // the final conflict; everything else is irrelevant to the
    // blocking proof and can be dropped (the clause over the kept
    // subset is still relatively inductive — shrinking the cube only
    // strengthens the UNSAT side of the consecution query).
    const std::vector<Lit> &core = ctx_.solver().conflictCore();
    std::vector<bool> in_core; // indexed by solver var
    for (Lit l : core) {
        size_t v = static_cast<size_t>(sat::var(l));
        if (in_core.size() <= v)
            in_core.resize(v + 1, false);
        in_core[v] = true;
    }
    Cube gen;
    gen.reserve(cube.size());
    for (const CubeLit &cl : cube) {
        Lit next = bits_[cl.idx].next;
        size_t v = static_cast<size_t>(sat::var(next));
        if (v < in_core.size() && in_core[v])
            gen.push_back(cl);
    }
    // Init repair: the learned clause must hold in every initial
    // state, i.e. the kept cube must contradict Init somewhere. The
    // full cube always does (an init cube reaching bad is caught as a
    // counterexample before blocking), so add one such literal back
    // if core filtering dropped them all.
    if (cubeSatisfiesInit(gen)) {
        for (const CubeLit &cl : cube) {
            int8_t init = bits_[cl.idx].init;
            if (init >= 0 && (init != 0) != cl.val) {
                gen.push_back(cl);
                break;
            }
        }
    }
    R2U_ASSERT(!cubeSatisfiesInit(gen),
               "PDR generalization produced an init-intersecting "
               "clause");
    return gen;
}

void
Pdr::addFrameClause(Cube cube, unsigned level)
{
    ensureLevel(level);
    std::vector<Lit> clause;
    clause.reserve(cube.size() + 1);
    clause.push_back(~acts_[level]);
    for (const CubeLit &cl : cube) {
        Lit cur = bits_[cl.idx].cur;
        clause.push_back(cl.val ? ~cur : cur);
    }
    ctx_.solver().addClause(clause);
    clauses_.push_back(FrameClause{std::move(cube), level});
    result_.clausesLearned++;
}

bool
Pdr::blockAll(Cube cube, unsigned level, unsigned major)
{
    std::priority_queue<Obligation, std::vector<Obligation>,
                        ObligationOrder>
        queue;
    queue.push(Obligation{std::move(cube), level, obligation_seq_++,
                          /*depth=*/0, /*opportunistic=*/false});

    // An opportunistic obligation's Init-hit is a real execution, but
    // its bad state lies beyond the level being cleared — reporting it
    // as a frame-`major` refutation both misstates the cex frame and,
    // when the true depth is past PdrOptions::bound, flips a bounded
    // Proven into a wrong Refuted. Drop the optimization instead: the
    // original (non-opportunistic) chain alone clears the level, and
    // its Init-hits land at exactly the shortest cex frame.
    auto purge_opportunistic = [&queue, this] {
        reenqueue_ = false;
        std::vector<Obligation> keep;
        while (!queue.empty()) {
            if (!queue.top().opportunistic)
                keep.push_back(queue.top());
            queue.pop();
        }
        for (Obligation &o : keep)
            queue.push(std::move(o));
    };

    while (!queue.empty()) {
        Obligation ob = queue.top();
        result_.obligations++;
        if (ob.level == 0) {
            // An initial state with a path to a bad state: concrete
            // counterexample. (Defensive — predecessors are tested
            // against Init before they are enqueued.)
            if (ob.opportunistic) {
                purge_opportunistic();
                continue;
            }
            cex_depth_ = ob.depth;
            return false;
        }

        // Consecution: is `ob.cube` reachable from F_{level-1} \ cube
        // in one step? Assert ¬cube behind a throwaway activation
        // literal (relative induction) and assume the primed cube.
        sat::CnfBuilder &cnf = ctx_.cnf();
        Lit tmp = cnf.freshLit();
        std::vector<Lit> not_cube;
        not_cube.reserve(ob.cube.size() + 1);
        not_cube.push_back(~tmp);
        for (const CubeLit &cl : ob.cube) {
            Lit cur = bits_[cl.idx].cur;
            not_cube.push_back(cl.val ? ~cur : cur);
        }
        ctx_.solver().addClause(not_cube);

        std::vector<Lit> as = frameAssumptions(ob.level - 1);
        as.push_back(tmp);
        for (const CubeLit &cl : ob.cube) {
            Lit next = bits_[cl.idx].next;
            as.push_back(cl.val ? next : ~next);
        }
        sat::Result r = solve(std::move(as));

        if (r == sat::Result::Unknown) {
            ctx_.solver().addClause(~tmp);
            return false; // stopped_ set by solve()
        }
        if (r == sat::Result::Unsat) {
            Cube gen = generalize(ob.cube);
            ctx_.solver().addClause(~tmp); // retire the guard
            addFrameClause(std::move(gen), ob.level);
            queue.pop();
            // Re-block at the next level: pushing obligations upward
            // keeps deep frames populated and speeds convergence. The
            // re-enqueue keeps its distance-to-bad but outgrows the
            // level — mark it so a later Init-hit is not mistaken for
            // a frame-`major` counterexample.
            if (reenqueue_ && ob.level < major)
                queue.push(Obligation{std::move(ob.cube),
                                      ob.level + 1,
                                      obligation_seq_++, ob.depth,
                                      /*opportunistic=*/true});
            continue;
        }

        // Sat: a predecessor inside F_{level-1}. If it is an initial
        // state the obligation chain is a real counterexample with its
        // bad state at frame depth + 1.
        Cube pred = extractCube();
        ctx_.solver().addClause(~tmp);
        if (cubeSatisfiesInit(pred)) {
            if (ob.opportunistic) {
                purge_opportunistic();
                continue;
            }
            cex_depth_ = ob.depth + 1;
            return false;
        }
        queue.push(
            Obligation{std::move(pred), ob.level - 1,
                       obligation_seq_++, ob.depth + 1,
                       ob.opportunistic});
    }
    return true;
}

bool
Pdr::propagate(unsigned k)
{
    ensureLevel(k + 1);
    for (unsigned i = 1; i <= k; i++) {
        size_t n = clauses_.size();
        for (size_t c = 0; c < n; c++) {
            if (clauses_[c].level != i)
                continue;
            // Push c forward iff F_i ∧ T ⇒ c' — i.e. the primed cube
            // is unreachable from F_i in one step.
            std::vector<Lit> as = frameAssumptions(i);
            as.reserve(as.size() + clauses_[c].cube.size());
            for (const CubeLit &cl : clauses_[c].cube) {
                Lit next = bits_[cl.idx].next;
                as.push_back(cl.val ? next : ~next);
            }
            sat::Result r = solve(std::move(as));
            if (r == sat::Result::Unknown)
                return false; // stopped_ set
            if (r == sat::Result::Unsat) {
                clauses_[c].level = i + 1;
                std::vector<Lit> clause;
                clause.reserve(clauses_[c].cube.size() + 1);
                clause.push_back(~acts_[i + 1]);
                for (const CubeLit &cl : clauses_[c].cube) {
                    Lit cur = bits_[cl.idx].cur;
                    clause.push_back(cl.val ? ~cur : cur);
                }
                ctx_.solver().addClause(clause);
                result_.clausesPushed++;
            }
        }
        bool converged = true;
        for (const FrameClause &fc : clauses_) {
            if (fc.level == i) {
                converged = false;
                break;
            }
        }
        // No clause lives at exactly level i: clauses(F_i) ==
        // clauses(F_{i+1}), so F_i is closed under the transition
        // relation. It contains Init and (level k >= i cleared,
        // frames monotone) excludes every bad state: an inductive
        // invariant proving the property outright.
        if (converged)
            return true;
    }
    return false;
}

PdrResult
Pdr::run()
{
    Timer timer;
    sat::Solver &solver = ctx_.solver();
    if (popts_.limits.config)
        solver.setConfig(*popts_.limits.config);
    solver.setExternalInterrupt(popts_.limits.cancel);
    if (popts_.limits.seconds >= 0) {
        has_deadline_ = true;
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            popts_.limits.seconds));
    }

    buildStateAndInit();
    bad_ = prop_(ctx_, 0);

    unsigned bound = popts_.bound;
    unsigned max_level =
        popts_.maxFrames > 0 ? popts_.maxFrames
                             : bound - 1 + kDefaultExtraFrames;
    if (max_level < bound - 1)
        max_level = bound - 1;

    auto finish = [&](Verdict v, VerdictSource src, bool unbounded,
                      unsigned cex_frame) {
        result_.verdict = v;
        result_.source = src;
        result_.unbounded = unbounded;
        result_.cexFrame = cex_frame;
        result_.conflicts = solver.stats().conflicts;
        result_.propagations = solver.stats().propagations;
        result_.cnfVars = static_cast<size_t>(solver.numVars());
        result_.cnfClauses = static_cast<size_t>(solver.numClauses());
        result_.seconds = timer.seconds();
        solver.setExternalInterrupt(nullptr);
        return result_;
    };

    // Level 0: a bad initial state refutes at frame 0 outright.
    {
        std::vector<Lit> as = frameAssumptions(0);
        as.push_back(bad_);
        sat::Result r = solve(std::move(as));
        if (r == sat::Result::Unknown)
            return finish(Verdict::Unknown, stop_source_, false, 0);
        if (r == sat::Result::Sat)
            return finish(Verdict::Refuted, VerdictSource::Solve,
                          false, 0);
    }

    for (unsigned k = 1;; k++) {
        if (k > max_level) {
            // Ran out of levels without convergence; the bound itself
            // was cleared levels ago.
            return finish(Verdict::Proven, VerdictSource::Solve,
                          false, 0);
        }
        ensureLevel(k);

        // Clear level k: block every bad state reachable within k
        // steps (as overapproximated by F_k).
        while (true) {
            std::vector<Lit> as = frameAssumptions(k);
            as.push_back(bad_);
            sat::Result r = solve(std::move(as));
            if (r == sat::Result::Unknown) {
                // Levels complete in order: if the bound was already
                // cleared, budget exhaustion past it still yields the
                // BMC verdict.
                if (k > bound - 1)
                    return finish(Verdict::Proven,
                                  VerdictSource::Solve, false, 0);
                return finish(Verdict::Unknown, stop_source_, false,
                              0);
            }
            if (r == sat::Result::Unsat)
                break; // level k cleared
            Cube s = extractCube();
            bool cex = false;
            if (cubeSatisfiesInit(s)) {
                cex_depth_ = 0; // defensive: level 0 is clear
                cex = true;
            } else if (!blockAll(std::move(s), k, k)) {
                cex = true; // cex_depth_ set unless stopped_
            }
            if (cex) {
                if (stopped_) {
                    if (k > bound - 1)
                        return finish(Verdict::Proven,
                                      VerdictSource::Solve, false, 0);
                    return finish(Verdict::Unknown, stop_source_,
                                  false, 0);
                }
                // Counterexample at frame cex_depth_. Original-chain
                // Init-hits only, so with levels < k clear this is
                // the shortest violation (depth == k).
                if (cex_depth_ <= bound - 1)
                    return finish(Verdict::Refuted,
                                  VerdictSource::Solve, false,
                                  cex_depth_);
                // Deeper than the bound: BMC at this bound proves.
                return finish(Verdict::Proven, VerdictSource::Solve,
                              false, 0);
            }
        }
        result_.frames = k;

        if (propagate(k))
            return finish(Verdict::Proven, VerdictSource::Solve,
                          true, 0);
        if (stopped_) {
            if (k >= bound - 1)
                return finish(Verdict::Proven, VerdictSource::Solve,
                              false, 0);
            return finish(Verdict::Unknown, stop_source_, false, 0);
        }
    }
}

} // namespace

PdrResult
checkPdr(const nl::Netlist &netlist,
         const std::unordered_map<std::string, nl::CellId> &signals,
         Unroller::Options options, const nl::CoiSeeds &seeds,
         const FramePropertyFn &prop, const PdrOptions &popts)
{
    Pdr pdr(netlist, signals, std::move(options), seeds, prop, popts);
    return pdr.run();
}

} // namespace r2u::bmc
