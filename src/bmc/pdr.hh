/**
 * @file
 * IC3/PDR — unbounded safety proofs over the COI-sliced 1-step
 * transition relation.
 *
 * Where BMC unrolls the netlist over `bound` frames and asks one big
 * SAT query, PDR (property-directed reachability) works on a 2-frame
 * unroll (current state -> next state) and maintains a sequence of
 * frame clause sets F_0 = Init ⊆ F_1 ⊆ ... ⊆ F_k, each
 * overapproximating the states reachable in at most that many steps.
 * Bad states found in F_k spawn proof obligations that are blocked by
 * relative-induction queries against earlier frames; blocked cubes are
 * generalized by dropping literals outside the solver's conflict core
 * and learned as frame clauses. When consecutive frames converge
 * (F_i == F_{i+1}) the fixpoint is an inductive invariant and the
 * property is proven for *every* bound — the unbounded verdicts the
 * engine's race exploits (see EngineOptions::engine).
 *
 * Verdict semantics are aligned with BMC at PdrOptions::bound so the
 * race stays bit-identical on the synthesized model:
 *  - a counterexample whose bad frame is < bound  -> Refuted
 *    (exactly the executions BMC at that bound searches);
 *  - convergence at any level                      -> Proven, unbounded;
 *  - level bound-1 cleared without convergence     -> Proven at the
 *    bound (same verdict BMC returns), unbounded = false — including
 *    when a deeper counterexample (bad frame >= bound) shows up while
 *    searching for convergence past the bound.
 * Levels are processed in increasing order, so counterexamples are
 * found shortest-first and the case split above is exhaustive.
 *
 * PDR carries no trace machinery of its own: a Refuted result reports
 * the counterexample frame and the caller re-solves the ordinary BMC
 * formula (guaranteed Sat) to materialize a standard replayable
 * bmc::Trace — so --validate, --cex-vcd, and the trust-but-verify
 * quarantine work unchanged on PDR refutations.
 */

#ifndef R2U_BMC_PDR_HH
#define R2U_BMC_PDR_HH

#include "bmc/checker.hh"
#include "netlist/coi.hh"

namespace r2u::bmc
{

struct PdrOptions
{
    /**
     * BMC-equivalence bound: the property is decided for executions
     * whose bad frame lies in [0, bound). Must be >= 1.
     */
    unsigned bound = 1;
    /**
     * Highest frame level to search for convergence (0: bound - 1
     * plus a fixed grace of extra levels). Reaching it with the bound
     * cleared yields a bounded Proven verdict.
     */
    unsigned maxFrames = 0;
    /** Budgets, deadline, and primary cancellation flag. */
    SolveLimits limits;
    /**
     * Optional second stop flag (the engine-wide interrupt), polled
     * between solver calls. The race path points limits.cancel at the
     * per-race stop flag, so engine-wide cancellation still needs a
     * lane of its own.
     */
    const std::atomic<bool> *cancel2 = nullptr;
};

struct PdrResult
{
    Verdict verdict = Verdict::Unknown;
    /** Budget class for Unknowns (Solve for definite verdicts). */
    VerdictSource source = VerdictSource::Solve;
    /** Proven for every bound (frame convergence), not just
     *  PdrOptions::bound. */
    bool unbounded = false;
    /** Refuted: the earliest frame at which the property is violated
     *  (< bound by the verdict semantics above). */
    unsigned cexFrame = 0;
    /** Highest frame level fully cleared of bad states. */
    unsigned frames = 0;
    /** Proof obligations processed. */
    uint64_t obligations = 0;
    /** Frame clauses learned (generalized blocked cubes). */
    uint64_t clausesLearned = 0;
    /** Clauses pushed forward during propagation phases. */
    uint64_t clausesPushed = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    size_t cnfVars = 0;
    size_t cnfClauses = 0;
    /** State bits (register + memory-word bits) in the sliced cone. */
    size_t stateBits = 0;
    double seconds = 0.0;
};

/**
 * Run IC3/PDR for a frame-local safety property.
 *
 * @param options the *BMC* unroll options — their concrete initial
 *        state (power-on register values, memory contents, symbolic
 *        memories) defines Init; the transition relation itself is
 *        built with a symbolic current state.
 * @param seeds cone-of-influence seeds (empty: the whole netlist is
 *        treated as in-cone).
 * @param prop frame-local property: prop(ctx, f) must only read frame
 *        f (plus frame-f inputs); its violation literal at frame 0
 *        defines the bad-state predicate. Frame-local environment
 *        assumptions it adds become part of the transition relation.
 */
PdrResult checkPdr(
    const nl::Netlist &netlist,
    const std::unordered_map<std::string, nl::CellId> &signals,
    Unroller::Options options, const nl::CoiSeeds &seeds,
    const FramePropertyFn &prop, const PdrOptions &popts);

} // namespace r2u::bmc

#endif // R2U_BMC_PDR_HH
