#include "bmc/engine.hh"

#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "bmc/validate.hh"
#include "common/logging.hh"
#include "common/timer.hh"
#include "sat/share.hh"
#include "sat/simplify.hh"

namespace r2u::bmc
{

using sat::Lit;

const char *
validateModeName(ValidateMode mode)
{
    switch (mode) {
      case ValidateMode::Off:
        return "off";
      case ValidateMode::Replay:
        return "replay";
      case ValidateMode::Sample:
        return "sample";
      case ValidateMode::Full:
        return "full";
    }
    panic("bad ValidateMode");
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Per-worker state: one incremental context per unroll bound. Only
 * the owning worker thread touches a Worker after construction, so no
 * locking is needed here.
 */
struct Engine::Worker
{
    std::map<unsigned, std::unique_ptr<PropCtx>> contexts;
    uint64_t contexts_built = 0;
    uint64_t contexts_seeded = 0;
    /** Bounds this worker claimed seed-builder duty for (it must
     *  publish or abandon each before its first query completes). */
    std::set<unsigned> seed_builder_for;

    PropCtx &
    contextFor(Engine &engine, unsigned bound)
    {
        auto it = contexts.find(bound);
        if (it != contexts.end())
            return *it->second;
        auto ctx = std::make_unique<PropCtx>(
            engine.nl_, engine.signals_, engine.options_, bound);
        // Warm start: the first worker to get here becomes the seed
        // builder and bit-blasts from the netlist; everyone else
        // waits for its snapshot and clones it, which is far cheaper
        // than encoding the transition relation again. A builder that
        // dies before publishing hands the role to a waiter.
        if (engine.jobs_ > 1) {
            std::unique_lock<std::mutex> lk(engine.seed_mu_);
            SeedSlot &slot = engine.seeds_[bound];
            while (!slot.seed && slot.building)
                engine.seed_cv_.wait(lk);
            if (slot.seed) {
                const PropCtx *seed = slot.seed.get();
                lk.unlock();
                ctx->seedFrom(*seed); // seed is immutable once set
                contexts_seeded++;
            } else {
                slot.building = true;
                seed_builder_for.insert(bound);
            }
        }
        ctx->solver().setConfig(engine.base_config_);
        it = contexts.emplace(bound, std::move(ctx)).first;
        contexts_built++;
        return *it->second;
    }
};

Engine::Engine(const nl::Netlist &netlist,
               const std::unordered_map<std::string, nl::CellId> &signals,
               Unroller::Options options, unsigned bound,
               EngineOptions engine_options)
    : nl_(netlist), signals_(signals), options_(std::move(options)),
      bound_(bound), eopts_(engine_options),
      jobs_(resolveJobs(engine_options.jobs))
{
    R2U_ASSERT(bound_ > 0, "engine needs a positive default bound");
    base_config_ = eopts_.solverConfig;
    if (!eopts_.inprocess)
        base_config_.inprocessPeriod = 0;
    if (!eopts_.cexVcdDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(eopts_.cexVcdDir, ec);
        if (ec)
            fatal("cannot create --cex-vcd directory %s: %s",
                  eopts_.cexVcdDir.c_str(), ec.message().c_str());
    }
    if (eopts_.totalSeconds >= 0) {
        has_total_deadline_ = true;
        total_deadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(eopts_.totalSeconds));
    }
}

Engine::~Engine() = default;

size_t
Engine::enqueue(Query query)
{
    R2U_ASSERT(query.prop != nullptr, "query without a property");
    if (query.bound == 0)
        query.bound = bound_;
    if (query.conflictBudget == Query::kInheritBudget)
        query.conflictBudget = eopts_.conflictBudget;
    batch_.push_back(std::move(query));
    return batch_.size() - 1;
}

double
Engine::escFactor(unsigned attempt) const
{
    if (eopts_.retryEscalation <= 1.0)
        return 1.0;
    double f = 1.0;
    for (unsigned i = 0; i < attempt; i++)
        f *= eopts_.retryEscalation;
    return f;
}

bool
Engine::attemptLimits(const Query &query, unsigned attempt,
                      SolveLimits &limits, bool &total_binding) const
{
    total_binding = false;
    if (cancel_.load(std::memory_order_relaxed))
        return false;

    limits = SolveLimits{};
    limits.cancel = &cancel_;
    limits.config = &base_config_;
    double esc = escFactor(attempt);

    // Attempt 0 uses the configured budgets verbatim (a budget of 0 is
    // a legal "give up immediately"); retries escalate from at least 1
    // so a multiplied budget can never stay stuck at 0.
    if (query.conflictBudget >= 0) {
        int64_t base = std::max<int64_t>(query.conflictBudget, 1);
        limits.conflicts =
            attempt == 0 ? query.conflictBudget
                         : static_cast<int64_t>(
                               static_cast<double>(base) * esc);
    }
    if (eopts_.propagationBudget >= 0) {
        int64_t base = std::max<int64_t>(eopts_.propagationBudget, 1);
        limits.propagations =
            attempt == 0 ? eopts_.propagationBudget
                         : static_cast<int64_t>(
                               static_cast<double>(base) * esc);
    }

    double query_deadline = -1.0;
    if (eopts_.querySeconds >= 0)
        query_deadline = eopts_.querySeconds * esc;

    if (has_total_deadline_) {
        double remaining =
            std::chrono::duration<double>(
                total_deadline_ - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0)
            return false;
        if (query_deadline < 0 || remaining < query_deadline) {
            query_deadline = remaining;
            total_binding = true;
        }
    }
    limits.seconds = query_deadline;
    return true;
}

bool
Engine::shouldRetry(const CheckResult &result, unsigned attempt) const
{
    if (result.verdict != Verdict::Unknown)
        return false;
    if (eopts_.retryEscalation <= 1.0 || attempt >= eopts_.maxRetries)
        return false;
    switch (result.source) {
      case VerdictSource::ConflictBudget:
      case VerdictSource::PropagationBudget:
      case VerdictSource::QueryDeadline:
        return true;
      default:
        // TotalDeadline / Cancelled / Interrupted: more budget will
        // not help (or the user asked us to stop).
        return false;
    }
}

namespace
{

/** A query that was never solved (cancelled while queued). */
CheckResult
cancelledResult(unsigned bound)
{
    CheckResult result;
    result.bound = bound;
    result.verdict = Verdict::Unknown;
    result.source = VerdictSource::Cancelled;
    return result;
}

/**
 * Rewrite the checker-level verdict source with engine knowledge:
 * a solver deadline that was really the clamped total deadline, and
 * definite verdicts reached only through retries.
 */
void
refineSource(CheckResult &result, bool total_binding)
{
    if (result.verdict == Verdict::Unknown) {
        if (result.source == VerdictSource::QueryDeadline &&
            total_binding)
            result.source = VerdictSource::TotalDeadline;
    } else if (result.retries > 0) {
        result.source = VerdictSource::Retry;
    }
}

} // namespace

CheckResult
Engine::runFresh(const Query &query)
{
    CheckResult result;
    unsigned attempt = 0;
    while (true) {
        SolveLimits limits;
        bool total_binding = false;
        if (!attemptLimits(query, attempt, limits, total_binding)) {
            if (attempt == 0)
                result = cancelledResult(query.bound);
            // else: keep the last attempt's honest Unknown.
            break;
        }
        CheckResult r = checkProperty(nl_, signals_, options_,
                                      query.bound, query.prop, limits);
        if (attempt > 0) {
            r.seconds += result.seconds;
            r.conflicts += result.conflicts;
            r.propagations += result.propagations;
        }
        result = std::move(r);
        result.retries = attempt;
        refineSource(result, total_binding);
        if (!shouldRetry(result, attempt))
            break;
        attempt++;
    }
    fillCoiStats(query, result);
    return result;
}

void
Engine::fillCoiStats(const Query &query, CheckResult &result) const
{
    if (query.seeds.empty())
        return;
    nl::Coi coi = nl::computeCoi(nl_, query.seeds);
    result.coiCells = coi.numCells();
    result.coiMems = coi.numMems();
}

namespace
{

/**
 * The end of the quarantine road: neither the original evidence nor a
 * fresh re-solve produced a self-consistent definite verdict. Degrade
 * to Unknown per the PR 3 policy (synthesis treats it exactly like a
 * budget Unknown: drop the hypothesis, never trust the verdict) and
 * pack the diagnostic bundle into validationNote.
 */
void
degradeToValidationFailure(CheckResult &result, const std::string &why)
{
    std::string diag = strfmt(
        "validation failure: %s\n"
        "primary verdict: %s (%s), bound %u, retries %u\n"
        "cnf: %zu vars, %zu clauses (+%zu vars / +%zu clauses this "
        "query)\n",
        why.c_str(), verdictName(result.verdict),
        verdictSourceName(result.source), result.bound, result.retries,
        result.cnfVars, result.cnfClauses, result.cnfVarsAdded,
        result.cnfClausesAdded);
    if (!result.trace.steps.empty())
        diag += "quarantined trace:\n" + result.trace.toString();
    result.verdict = Verdict::Unknown;
    result.source = VerdictSource::ValidationFailed;
    result.validated = false;
    result.trace = Trace{};
    result.validationNote = std::move(diag);
}

} // namespace

std::string
Engine::vcdPathFor(const Query &query) const
{
    if (eopts_.cexVcdDir.empty())
        return "";
    std::string name = query.name.empty() ? "query" : query.name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return strfmt("%s/cex_%s_b%u.vcd", eopts_.cexVcdDir.c_str(),
                  name.c_str(), query.bound);
}

CheckResult
Engine::quarantineSolve(const Query &query, bool warm_ok)
{
    SolveLimits limits;
    bool total_binding = false;
    if (!attemptLimits(query, 0, limits, total_binding)) {
        CheckResult r = cancelledResult(query.bound);
        if (eopts_.faultHook)
            eopts_.faultHook(query, r, SolveStage::Quarantine);
        return r;
    }
    CheckResult r =
        checkProperty(nl_, signals_, options_, query.bound, query.prop,
                      limits, warm_ok ? seedFor(query.bound) : nullptr);
    refineSource(r, total_binding);
    if (eopts_.faultHook)
        eopts_.faultHook(query, r, SolveStage::Quarantine);
    return r;
}

void
Engine::validateResult(const Query &query, CheckResult &result,
                       bool recheck_proof)
{
    Timer vtimer;
    switch (result.verdict) {
      case Verdict::Unknown:
        // Already the degraded verdict; nothing to cross-check.
        return;

      case Verdict::Refuted: {
        std::string vcd = vcdPathFor(query);
        ReplayResult rep =
            replayTrace(nl_, signals_, options_, result.bound,
                        query.prop, result.trace, vcd);
        result.replays++;
        result.replaySeconds += rep.seconds;
        if (rep.ok) {
            result.validated = true;
            break;
        }
        // Quarantine: the counterexample does not stand on its own.
        // One fresh, non-incremental re-solve; if it refutes with a
        // trace that *does* replay, that independent evidence is
        // adopted. Anything else degrades to Unknown.
        result.validationMismatches++;
        warn("validate: counterexample for '%s' failed replay; "
             "quarantining and re-solving fresh",
             query.name.c_str());
        CheckResult fresh = quarantineSolve(query, /*warm_ok=*/false);
        if (fresh.verdict == Verdict::Refuted) {
            ReplayResult rep2 =
                replayTrace(nl_, signals_, options_, fresh.bound,
                            query.prop, fresh.trace, vcd);
            result.replays++;
            result.replaySeconds += rep2.seconds;
            if (rep2.ok) {
                result.trace = std::move(fresh.trace);
                result.validated = true;
                result.validationNote = strfmt(
                    "quarantine recovery: primary counterexample "
                    "failed replay but a fresh re-solve produced a "
                    "replayable refutation. primary replay "
                    "diagnostics:\n%s",
                    rep.note.c_str());
                break;
            }
        }
        degradeToValidationFailure(
            result,
            strfmt("counterexample failed replay and quarantine "
                   "re-solve answered %s.\nprimary replay "
                   "diagnostics:\n%s",
                   verdictName(fresh.verdict), rep.note.c_str()));
        break;
      }

      case Verdict::Proven: {
        if (!recheck_proof)
            break;
        // Routine spot-check: what it validates is the search (a
        // fresh solver, no incremental contamination), so the CNF may
        // warm-start from the published seed. A mismatch found here
        // still goes through the fully independent path above.
        CheckResult fresh = quarantineSolve(query, /*warm_ok=*/true);
        result.proofRechecks++;
        result.recheckSeconds += fresh.seconds;
        switch (fresh.verdict) {
          case Verdict::Proven:
            result.validated = true;
            break;
          case Verdict::Unknown:
            // The fresh solve hit a budget; neither confirms nor
            // contradicts. Keep the primary Proven verdict.
            result.recheckInconclusive++;
            break;
          case Verdict::Refuted: {
            result.validationMismatches++;
            warn("validate: proof re-check for '%s' found a "
                 "counterexample; replaying it",
                 query.name.c_str());
            std::string vcd = vcdPathFor(query);
            ReplayResult rep =
                replayTrace(nl_, signals_, options_, fresh.bound,
                            query.prop, fresh.trace, vcd);
            result.replays++;
            result.replaySeconds += rep.seconds;
            if (rep.ok) {
                // A concretely replayable counterexample beats the
                // incremental UNSAT: adopt the refutation.
                result.verdict = Verdict::Refuted;
                result.source = fresh.source;
                result.trace = std::move(fresh.trace);
                result.validated = true;
                result.validationNote =
                    "proof re-check refuted the property with a "
                    "replayable counterexample; Proven verdict "
                    "discarded";
            } else {
                degradeToValidationFailure(
                    result,
                    strfmt("proof re-check disagreed (Refuted) but "
                           "its counterexample failed replay.\n"
                           "re-check replay diagnostics:\n%s",
                           rep.note.c_str()));
            }
            break;
          }
        }
        break;
      }
    }
    result.validateSeconds += vtimer.seconds();
}

void
Engine::postProcess(size_t index, const Query &query,
                    CheckResult &result)
{
    if (eopts_.faultHook)
        eopts_.faultHook(query, result, SolveStage::Primary);

    if (eopts_.validate != ValidateMode::Off) {
        bool recheck_proof = false;
        switch (eopts_.validate) {
          case ValidateMode::Off:
          case ValidateMode::Replay:
            break;
          case ValidateMode::Sample:
            recheck_proof =
                index % std::max(1u, eopts_.validateSampleN) == 0;
            break;
          case ValidateMode::Full:
            recheck_proof = true;
            break;
        }
        validateResult(query, result, recheck_proof);
    }

    if (result.verdict != Verdict::Unknown) {
        Journal::Record rec;
        rec.name = query.name;
        rec.verdict = result.verdict;
        rec.source = result.source;
        rec.validated = result.validated;
        rec.bound = result.bound;
        rec.retries = result.retries;
        rec.seconds = result.seconds;
        rec.conflicts = result.conflicts;
        rec.propagations = result.propagations;
        if (eopts_.journal && eopts_.journal->isOpen()) {
            rec.key = journalKey(query.name, result.bound,
                                 query.contentHash);
            result.journaled = eopts_.journal->append(rec);
        }
        // Cache keys are the raw content hash; unhashed queries
        // (contentHash 0) are never cached — their identity is not
        // content-derived, so a cache record would be unsound to
        // replay in another run.
        if (eopts_.cache && eopts_.cache->isOpen() &&
            query.contentHash != 0) {
            rec.key = query.contentHash;
            result.cached = eopts_.cache->append(rec);
        }
    }
}

void
Engine::resolveFromJournal(const std::vector<Query> &batch,
                           std::vector<CheckResult> &results,
                           std::vector<char> &done)
{
    Journal *journal = eopts_.journal;
    if (!journal || journal->numLoaded() == 0)
        return;
    for (size_t i = 0; i < batch.size(); i++) {
        const Journal::Record *rec = journal->lookup(journalKey(
            batch[i].name, batch[i].bound, batch[i].contentHash));
        if (!rec)
            continue;
        CheckResult r;
        r.verdict = rec->verdict;
        r.source = rec->source;
        r.bound = rec->bound;
        r.retries = rec->retries;
        r.seconds = rec->seconds;
        r.conflicts = rec->conflicts;
        r.propagations = rec->propagations;
        r.validated = rec->validated;
        r.fromJournal = true;
        if (r.verdict == Verdict::Refuted)
            r.validationNote = "verdict resumed from journal; the "
                               "counterexample trace is not stored";
        fillCoiStats(batch[i], r);
        results[i] = std::move(r);
        done[i] = 1;
    }
}

void
Engine::resolveFromCache(const std::vector<Query> &batch,
                         std::vector<CheckResult> &results,
                         std::vector<char> &done)
{
    VerdictCache *cache = eopts_.cache;
    if (!cache || !cache->isOpen())
        return;
    for (size_t i = 0; i < batch.size(); i++) {
        if (done[i] || batch[i].contentHash == 0)
            continue;
        const Journal::Record *rec =
            cache->lookup(batch[i].contentHash);
        if (!rec) {
            stats_.cacheMisses++;
            if (cache->hasStaleEntry(batch[i].name, batch[i].bound,
                                     batch[i].contentHash))
                stats_.cacheInvalidations++;
            continue;
        }
        CheckResult r;
        r.verdict = rec->verdict;
        r.source = rec->source;
        r.bound = rec->bound;
        r.retries = rec->retries;
        r.seconds = rec->seconds;
        r.conflicts = rec->conflicts;
        r.propagations = rec->propagations;
        r.validated = rec->validated;
        r.fromCache = true;
        if (r.verdict == Verdict::Refuted)
            r.validationNote = "verdict replayed from verdict cache; "
                               "the counterexample trace is not stored";
        fillCoiStats(batch[i], r);
        results[i] = std::move(r);
        done[i] = 1;
    }
}

sat::SolverConfig
Engine::challengerConfig(unsigned racer) const
{
    // Diversification table: each challenger searches the same formula
    // with a different restart policy, phase heuristic, and seed, so
    // the portfolio covers instance classes the base config is slow
    // on (cf. the Glucose-vs-Luby split measured on combinatorial
    // cores). Deterministic in the racer index.
    sat::SolverConfig cfg = base_config_;
    cfg.seed = 0x9E3779B97F4A7C15ull * racer;
    switch (racer % 4) {
      case 1:
        cfg.restart = sat::SolverConfig::Restart::Glucose;
        cfg.lbdReduce = true;
        cfg.polarity = sat::SolverConfig::Polarity::False;
        break;
      case 2:
        cfg.restart = sat::SolverConfig::Restart::Luby;
        cfg.lubyUnit = 300;
        cfg.polarity = sat::SolverConfig::Polarity::Rand;
        cfg.randomFreq = 0.02;
        break;
      case 3:
        cfg.restart = sat::SolverConfig::Restart::Glucose;
        cfg.glucoseMargin = 1.15;
        cfg.lbdReduce = true;
        cfg.polarity = sat::SolverConfig::Polarity::True;
        break;
      case 0: // racer >= 4 wraps: randomized Luby
        cfg.restart = sat::SolverConfig::Restart::Luby;
        cfg.polarity = sat::SolverConfig::Polarity::Rand;
        cfg.randomFreq = 0.05;
        break;
    }
    return cfg;
}

sat::Result
Engine::racePortfolio(PropCtx &ctx, const SolveLimits &limits,
                      CheckResult &result)
{
    sat::Solver &incumbent = ctx.solver();
    unsigned racers = std::max(2u, eopts_.portfolioRacers);
    Lit act = ctx.activation();

    // One snapshot per race: level-0 units plus every live clause, in
    // the incumbent's variable numbering. The snapshot includes the
    // current query's activation-guarded clauses and the retired
    // activation units of earlier queries, so every racer decides
    // exactly the incumbent's formula under the same assumption — and
    // therefore any racer's learnt clauses are implicates of the
    // shared database, sound to import in either direction unguarded.
    std::vector<std::vector<Lit>> snapshot;
    incumbent.exportCnf(snapshot);

    sat::ClausePool pool(racers);
    if (eopts_.shareClauses)
        incumbent.setShare(&pool, 0);

    uint64_t inc_exported = incumbent.stats().sharedExported;
    uint64_t inc_imported = incumbent.stats().sharedImported;

    std::vector<std::unique_ptr<sat::Solver>> challengers;
    for (unsigned r = 1; r < racers; r++) {
        auto ch = std::make_unique<sat::Solver>();
        ch->setConfig(challengerConfig(r));
        while (ch->numVars() < incumbent.numVars())
            ch->newVar();
        for (const auto &clause : snapshot)
            ch->addClause(clause);
        if (eopts_.inprocess) {
            // BVE + subsumption on the snapshot; the activation
            // variable must survive to be assumed. Model
            // reconstruction restores eliminated variables before a
            // SAT model is adopted below.
            ch->preprocess(sat::SimplifyOptions{},
                           {sat::var(act)});
        }
        if (eopts_.shareClauses)
            ch->setShare(&pool, r);
        challengers.push_back(std::move(ch));
    }

    std::atomic<int> winner{-1};
    std::vector<sat::Result> verdicts(racers, sat::Result::Unknown);
    std::vector<std::thread> threads;
    threads.reserve(racers - 1);
    // Challengers keep their diversified configs: share the budgets
    // and deadline but not limits.config (the base config).
    SolveLimits ch_limits = limits;
    ch_limits.config = nullptr;
    for (unsigned r = 1; r < racers; r++) {
        sat::Solver *ch = challengers[r - 1].get();
        threads.emplace_back([ch, r, act, ch_limits, &winner,
                              &verdicts, &incumbent, &challengers] {
            applyLimits(*ch, ch_limits);
            sat::Result res = ch->solve({act});
            verdicts[r] = res;
            if (res != sat::Result::Unknown) {
                int expected = -1;
                if (winner.compare_exchange_strong(
                        expected, static_cast<int>(r))) {
                    incumbent.interrupt();
                    for (auto &other : challengers)
                        if (other.get() != ch)
                            other->interrupt();
                }
            }
        });
    }

    applyLimits(incumbent, limits);
    sat::Result inc_res = incumbent.solve({act});
    verdicts[0] = inc_res;
    if (inc_res != sat::Result::Unknown) {
        int expected = -1;
        winner.compare_exchange_strong(expected, 0);
    }
    // The race is decided (or the incumbent exhausted its limits):
    // stop every challenger and wait them out before touching shared
    // state. clearInterrupt() must come after the joins — a late
    // winner still pokes the incumbent's flag.
    for (auto &ch : challengers)
        ch->interrupt();
    for (auto &t : threads)
        t.join();
    incumbent.clearInterrupt();
    incumbent.setShare(nullptr, 0);

    int win = winner.load(std::memory_order_relaxed);
    sat::Result final_res = inc_res;
    if (win > 0) {
        final_res = verdicts[win];
        if (final_res == sat::Result::Sat) {
            // extractTrace() reads the incumbent's model; hand it the
            // challenger's (reconstruction already re-entered any
            // BVE-eliminated variables in Solver::solve()).
            incumbent.adoptModel(
                challengers[win - 1]->model());
        }
    }

    result.portfolioRacers = racers;
    result.portfolioWinner = win;
    result.sharedExported +=
        incumbent.stats().sharedExported - inc_exported;
    result.sharedImported +=
        incumbent.stats().sharedImported - inc_imported;
    for (const auto &ch : challengers) {
        result.sharedExported += ch->stats().sharedExported;
        result.sharedImported += ch->stats().sharedImported;
        result.preprocessVarsEliminated +=
            ch->stats().preprocessVarsEliminated;
        result.preprocessClausesRemoved +=
            ch->stats().preprocessClausesRemoved;
    }
    return final_res;
}

void
Engine::maybePublishSeed(Worker &worker, PropCtx &ctx, unsigned bound)
{
    if (worker.seed_builder_for.erase(bound) == 0)
        return;
    // Snapshot outside the lock: ctx belongs to this worker and the
    // slot is ours until we publish (building == true keeps waiters
    // parked on the condvar).
    auto seed = std::make_unique<PropCtx>(nl_, signals_, options_,
                                          bound);
    seed->seedFrom(ctx);
    {
        std::lock_guard<std::mutex> lk(seed_mu_);
        SeedSlot &slot = seeds_[bound];
        slot.seed = std::move(seed);
        slot.building = false;
    }
    seed_cv_.notify_all();
}

const PropCtx *
Engine::seedFor(unsigned bound)
{
    std::lock_guard<std::mutex> lk(seed_mu_);
    auto it = seeds_.find(bound);
    // Published seeds are immutable and live as long as the engine,
    // so handing out the raw pointer is safe.
    return it != seeds_.end() ? it->second.seed.get() : nullptr;
}

void
Engine::abandonSeed(Worker &worker, unsigned bound)
{
    if (worker.seed_builder_for.erase(bound) == 0)
        return;
    {
        std::lock_guard<std::mutex> lk(seed_mu_);
        seeds_[bound].building = false;
    }
    seed_cv_.notify_all();
}

CheckResult
Engine::runIncremental(Worker &worker, const Query &query)
{
    Timer timer;
    CheckResult result;
    result.bound = query.bound;

    SolveLimits limits;
    bool total_binding = false;
    if (!attemptLimits(query, 0, limits, total_binding)) {
        result = cancelledResult(query.bound);
        fillCoiStats(query, result);
        return result;
    }

    PropCtx &ctx = worker.contextFor(*this, query.bound);
    // If contextFor made this worker the seed builder, waiters are
    // parked until the snapshot lands after CNF construction below;
    // on any exit without publishing (property callback threw), hand
    // the builder role back so they can proceed.
    struct SeedGuard
    {
        Engine &engine;
        Worker &worker;
        unsigned bound;
        ~SeedGuard() { engine.abandonSeed(worker, bound); }
    } seed_guard{*this, worker, query.bound};
    sat::Solver &solver = ctx.solver();
    uint64_t conflicts_before = solver.stats().conflicts;
    uint64_t props_before = solver.stats().propagations;
    uint64_t simp_runs_before = solver.stats().simplifyRuns;
    uint64_t simp_removed_before =
        solver.stats().simplifyClausesRemoved;
    size_t vars_before = static_cast<size_t>(solver.numVars());
    size_t clauses_before = static_cast<size_t>(solver.numClauses());

    ctx.beginQuery();
    Lit bad = query.prop(ctx);
    ctx.assume(bad); // guarded assertion of the violation
    // The transition relation this query demanded is now in the CNF:
    // the snapshot point for warm-starting sibling contexts.
    maybePublishSeed(worker, ctx, query.bound);

    bool race = eopts_.portfolio && eopts_.portfolioRacers >= 2;

    // Attempt/retry loop on the shared context: a retry just re-solves
    // with bigger limits — the learnt clauses from the failed attempt
    // carry over, so escalation resumes rather than restarts the work.
    unsigned attempt = 0;
    while (true) {
        sat::Result r;
        if (race) {
            r = racePortfolio(ctx, limits, result);
        } else {
            applyLimits(solver, limits);
            r = solver.solve({ctx.activation()});
        }
        switch (r) {
          case sat::Result::Unsat:
            result.verdict = Verdict::Proven;
            result.source = VerdictSource::Solve;
            break;
          case sat::Result::Unknown:
            result.verdict = Verdict::Unknown;
            result.source = sourceFromStop(solver.stopReason());
            break;
          case sat::Result::Sat:
            result.verdict = Verdict::Refuted;
            result.source = VerdictSource::Solve;
            result.trace = extractTrace(ctx);
            break;
        }
        result.retries = attempt;
        refineSource(result, total_binding);
        if (!shouldRetry(result, attempt))
            break;
        attempt++;
        if (!attemptLimits(query, attempt, limits, total_binding))
            break; // keep the last attempt's honest Unknown
    }

    result.seconds = timer.seconds();
    result.conflicts = solver.stats().conflicts - conflicts_before;
    result.propagations = solver.stats().propagations - props_before;
    result.inprocessRuns =
        solver.stats().simplifyRuns - simp_runs_before;
    result.inprocessClausesRemoved =
        solver.stats().simplifyClausesRemoved - simp_removed_before;
    result.cnfVars = static_cast<size_t>(solver.numVars());
    result.cnfClauses = static_cast<size_t>(solver.numClauses());
    result.cnfVarsAdded = result.cnfVars - vars_before;
    result.cnfClausesAdded = result.cnfClauses - clauses_before;
    fillCoiStats(query, result);
    ctx.endQuery();
    return result;
}

std::vector<CheckResult>
Engine::drain()
{
    std::vector<Query> batch = std::move(batch_);
    batch_.clear();
    std::vector<CheckResult> results(batch.size());
    if (batch.empty())
        return results;
    stats_.queries += batch.size();

    // Resume: queries with a journaled (already-validated) verdict are
    // answered up front, single-threaded, and never dispatched. The
    // journal (this run's own restart log) outranks the cross-run
    // cache; anything it cannot answer falls through to the cache.
    std::vector<char> done(batch.size(), 0);
    resolveFromJournal(batch, results, done);
    resolveFromCache(batch, results, done);

    auto accumulate = [this](const CheckResult &r) {
        stats_.cnfVarsAdded += r.cnfVarsAdded;
        stats_.cnfClausesAdded += r.cnfClausesAdded;
        stats_.retries += r.retries;
        if (r.verdict == Verdict::Unknown)
            stats_.unknowns++;
        stats_.replays += r.replays;
        stats_.proofRechecks += r.proofRechecks;
        stats_.recheckInconclusive += r.recheckInconclusive;
        stats_.validationMismatches += r.validationMismatches;
        if (r.source == VerdictSource::ValidationFailed)
            stats_.validationFailures++;
        if (r.fromJournal)
            stats_.journalHits++;
        if (r.journaled)
            stats_.journalAppends++;
        if (r.fromCache)
            stats_.cacheHits++;
        if (r.cached)
            stats_.cacheAppends++;
        stats_.replaySeconds += r.replaySeconds;
        stats_.recheckSeconds += r.recheckSeconds;
        stats_.validateSeconds += r.validateSeconds;
        if (r.portfolioRacers > 0)
            stats_.portfolioRaces++;
        if (r.portfolioWinner > 0)
            stats_.portfolioChallengerWins++;
        stats_.sharedExported += r.sharedExported;
        stats_.sharedImported += r.sharedImported;
        stats_.preprocessVarsEliminated += r.preprocessVarsEliminated;
        stats_.preprocessClausesRemoved += r.preprocessClausesRemoved;
        stats_.inprocessRuns += r.inprocessRuns;
        stats_.inprocessClausesRemoved += r.inprocessClausesRemoved;
    };

    if (jobs_ == 1) {
        // Reference path: fresh solver + unroller per query, exactly
        // the classic checkProperty() behavior.
        for (size_t i = 0; i < batch.size(); i++) {
            if (done[i])
                continue;
            results[i] = runFresh(batch[i]);
            postProcess(i, batch[i], results[i]);
            stats_.contexts++;
        }
        for (const CheckResult &r : results)
            accumulate(r);
        return results;
    }

    // The netlist's lazy topological order is computed by the first
    // caller and cached in a mutable member; force it here, once, on
    // this thread, so the workers only ever read it.
    nl_.validate();

    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(jobs_);
        workers_.clear();
        for (unsigned w = 0; w < jobs_; w++)
            workers_.push_back(std::make_unique<Worker>());
    }

    std::vector<std::exception_ptr> errors(batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
        if (done[i])
            continue;
        pool_->submit([this, &batch, &results, &errors, i](unsigned w) {
            try {
                results[i] = runIncremental(*workers_[w], batch[i]);
                postProcess(i, batch[i], results[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool_->wait();

    stats_.contexts = 0;
    stats_.contextsSeeded = 0;
    for (const auto &w : workers_) {
        stats_.contexts += w->contexts_built;
        stats_.contextsSeeded += w->contexts_seeded;
    }
    stats_.steals = pool_->steals();
    for (const CheckResult &r : results)
        accumulate(r);

    for (size_t i = 0; i < batch.size(); i++)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    return results;
}

} // namespace r2u::bmc
