#include "bmc/engine.hh"

#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <map>
#include <set>
#include <thread>

#include "bmc/pdr.hh"
#include "bmc/validate.hh"
#include "common/logging.hh"
#include "common/timer.hh"
#include "sat/share.hh"
#include "sat/simplify.hh"

namespace r2u::bmc
{

using sat::Lit;

const char *
validateModeName(ValidateMode mode)
{
    switch (mode) {
      case ValidateMode::Off:
        return "off";
      case ValidateMode::Replay:
        return "replay";
      case ValidateMode::Sample:
        return "sample";
      case ValidateMode::Full:
        return "full";
    }
    panic("bad ValidateMode");
}

const char *
engineChoiceName(EngineChoice choice)
{
    switch (choice) {
      case EngineChoice::Bmc:
        return "bmc";
      case EngineChoice::KInduction:
        return "kind";
      case EngineChoice::Pdr:
        return "pdr";
      case EngineChoice::Race:
        return "race";
    }
    panic("bad EngineChoice");
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Per-worker state: one incremental context per unroll bound. Only
 * the owning worker thread touches a Worker after construction, so no
 * locking is needed here.
 */
struct Engine::Worker
{
    std::map<unsigned, std::unique_ptr<PropCtx>> contexts;
    uint64_t contexts_built = 0;
    uint64_t contexts_seeded = 0;
    /** Bounds this worker claimed seed-builder duty for (it must
     *  publish or abandon each before its first query completes). */
    std::set<unsigned> seed_builder_for;

    PropCtx &
    contextFor(Engine &engine, unsigned bound)
    {
        auto it = contexts.find(bound);
        if (it != contexts.end())
            return *it->second;
        auto ctx = std::make_unique<PropCtx>(
            engine.nl_, engine.signals_, engine.options_, bound);
        // Warm start: the first worker to get here becomes the seed
        // builder and bit-blasts from the netlist; everyone else
        // waits for its snapshot and clones it, which is far cheaper
        // than encoding the transition relation again. A builder that
        // dies before publishing hands the role to a waiter.
        if (engine.jobs_ > 1) {
            std::unique_lock<std::mutex> lk(engine.seed_mu_);
            SeedSlot &slot = engine.seeds_[bound];
            while (!slot.seed && slot.building)
                engine.seed_cv_.wait(lk);
            if (slot.seed) {
                const PropCtx *seed = slot.seed.get();
                lk.unlock();
                ctx->seedFrom(*seed); // seed is immutable once set
                contexts_seeded++;
            } else {
                slot.building = true;
                seed_builder_for.insert(bound);
            }
        }
        ctx->solver().setConfig(engine.base_config_);
        it = contexts.emplace(bound, std::move(ctx)).first;
        contexts_built++;
        return *it->second;
    }
};

Engine::Engine(const nl::Netlist &netlist,
               const std::unordered_map<std::string, nl::CellId> &signals,
               Unroller::Options options, unsigned bound,
               EngineOptions engine_options)
    : nl_(netlist), signals_(signals), options_(std::move(options)),
      bound_(bound), eopts_(engine_options),
      jobs_(resolveJobs(engine_options.jobs))
{
    R2U_ASSERT(bound_ > 0, "engine needs a positive default bound");
    base_config_ = eopts_.solverConfig;
    if (!eopts_.inprocess)
        base_config_.inprocessPeriod = 0;
    if (!eopts_.cexVcdDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(eopts_.cexVcdDir, ec);
        if (ec)
            fatal("cannot create --cex-vcd directory %s: %s",
                  eopts_.cexVcdDir.c_str(), ec.message().c_str());
    }
    if (eopts_.totalSeconds >= 0) {
        has_total_deadline_ = true;
        total_deadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(eopts_.totalSeconds));
    }
}

Engine::~Engine() = default;

size_t
Engine::enqueue(Query query)
{
    R2U_ASSERT(query.prop != nullptr, "query without a property");
    if (query.bound == 0)
        query.bound = bound_;
    if (query.conflictBudget == Query::kInheritBudget)
        query.conflictBudget = eopts_.conflictBudget;
    batch_.push_back(std::move(query));
    return batch_.size() - 1;
}

double
Engine::escFactor(unsigned attempt) const
{
    if (eopts_.retryEscalation <= 1.0)
        return 1.0;
    double f = 1.0;
    for (unsigned i = 0; i < attempt; i++)
        f *= eopts_.retryEscalation;
    return f;
}

bool
Engine::attemptLimits(const Query &query, unsigned attempt,
                      SolveLimits &limits, bool &total_binding) const
{
    total_binding = false;
    if (cancel_.load(std::memory_order_relaxed))
        return false;

    limits = SolveLimits{};
    limits.cancel = &cancel_;
    limits.config = &base_config_;
    double esc = escFactor(attempt);

    // Attempt 0 uses the configured budgets verbatim (a budget of 0 is
    // a legal "give up immediately"); retries escalate from at least 1
    // so a multiplied budget can never stay stuck at 0.
    if (query.conflictBudget >= 0) {
        int64_t base = std::max<int64_t>(query.conflictBudget, 1);
        limits.conflicts =
            attempt == 0 ? query.conflictBudget
                         : static_cast<int64_t>(
                               static_cast<double>(base) * esc);
    }
    if (eopts_.propagationBudget >= 0) {
        int64_t base = std::max<int64_t>(eopts_.propagationBudget, 1);
        limits.propagations =
            attempt == 0 ? eopts_.propagationBudget
                         : static_cast<int64_t>(
                               static_cast<double>(base) * esc);
    }

    double query_deadline = -1.0;
    if (eopts_.querySeconds >= 0)
        query_deadline = eopts_.querySeconds * esc;

    if (has_total_deadline_) {
        double remaining =
            std::chrono::duration<double>(
                total_deadline_ - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0)
            return false;
        if (query_deadline < 0 || remaining < query_deadline) {
            query_deadline = remaining;
            total_binding = true;
        }
    }
    limits.seconds = query_deadline;
    return true;
}

bool
Engine::shouldRetry(const CheckResult &result, unsigned attempt) const
{
    if (result.verdict != Verdict::Unknown)
        return false;
    if (eopts_.retryEscalation <= 1.0 || attempt >= eopts_.maxRetries)
        return false;
    switch (result.source) {
      case VerdictSource::ConflictBudget:
      case VerdictSource::PropagationBudget:
      case VerdictSource::QueryDeadline:
        return true;
      default:
        // TotalDeadline / Cancelled / Interrupted: more budget will
        // not help (or the user asked us to stop).
        return false;
    }
}

namespace
{

/** A query that was never solved (cancelled while queued). */
CheckResult
cancelledResult(unsigned bound)
{
    CheckResult result;
    result.bound = bound;
    result.verdict = Verdict::Unknown;
    result.source = VerdictSource::Cancelled;
    return result;
}

/**
 * Rewrite the checker-level verdict source with engine knowledge:
 * a solver deadline that was really the clamped total deadline, and
 * definite verdicts reached only through retries.
 */
void
refineSource(CheckResult &result, bool total_binding)
{
    if (result.verdict == Verdict::Unknown) {
        if (result.source == VerdictSource::QueryDeadline &&
            total_binding)
            result.source = VerdictSource::TotalDeadline;
    } else if (result.retries > 0) {
        result.source = VerdictSource::Retry;
    }
}

/**
 * Proof-engine race: IC3/PDR and k-induction challengers running
 * alongside the incumbent BMC solve of one frame-local query.
 *
 * Challengers claim the race ONLY with Proven-class verdicts (a PDR
 * fixpoint or cleared bound, an induction step that closed, or a
 * k-induction base case that closed at the bound). Refutations are
 * never claimed: BMC finds Sat answers fast and owns trace fidelity,
 * so a challenger refutation just lets the incumbent finish. Verdict
 * semantics of both challengers are aligned with BMC at the query's
 * bound, so whoever wins, the verdict — and therefore the synthesized
 * model — is identical; the race only changes wall-clock and proof
 * *generality* (unbounded vs bounded Proven).
 *
 * The winner interrupts the incumbent solver (when one is wired up;
 * the jobs=1 fresh path has none and merely skips its retries).
 * finish() must be called before the incumbent's solver is reused,
 * and the caller must clearInterrupt() afterwards — a challenger's
 * interrupt poke is sticky.
 */
class ProofRace
{
  public:
    static constexpr int kPdr = 1;
    static constexpr int kKind = 2;

    ProofRace(const nl::Netlist &nl,
              const std::unordered_map<std::string, nl::CellId> &signals,
              const Unroller::Options &options, const Query &query,
              const SolveLimits &limits,
              const std::atomic<bool> *engine_cancel,
              sat::Solver *incumbent)
        : nl_(nl), signals_(signals), options_(options), query_(query),
          limits_(limits), engine_cancel_(engine_cancel),
          incumbent_(incumbent)
    {
    }

    ~ProofRace() { finish(); }

    void
    start()
    {
        pdr_thread_ = std::thread([this] {
            PdrOptions popts;
            popts.bound = query_.bound;
            popts.limits = limits_;
            popts.limits.cancel = &stop_;
            popts.cancel2 = engine_cancel_;
            pdr_ = checkPdr(nl_, signals_, options_, query_.seeds,
                            query_.frameProp, popts);
            if (pdr_.verdict == Verdict::Proven)
                claim(kPdr);
        });
        kind_thread_ = std::thread([this] {
            SolveLimits kl = limits_;
            kl.cancel = &stop_;
            kind_ = checkInductive(nl_, signals_, options_,
                                   query_.bound, query_.bound,
                                   query_.frameProp, kl);
            if (kind_.verdict == Verdict::Proven || kind_.baseProven)
                claim(kKind);
        });
    }

    /** Has a challenger already claimed the race? (loop early-out) */
    bool
    decided() const
    {
        return winner_.load(std::memory_order_relaxed) != 0;
    }

    /** Stop both challengers and wait them out. Idempotent. */
    void
    finish()
    {
        stop_.store(true, std::memory_order_relaxed);
        if (pdr_thread_.joinable())
            pdr_thread_.join();
        if (kind_thread_.joinable())
            kind_thread_.join();
    }

    /**
     * After finish(): fold the race outcome into the incumbent's
     * result. A winning challenger replaces the verdict, source,
     * engine attribution, and solver-work counters (winner-only
     * attribution — the interrupted incumbent's partial work is not
     * charged to this query's record). Returns true when a challenger
     * verdict replaced the incumbent's.
     */
    bool
    merge(CheckResult &result)
    {
        result.engineRaced = true;
        // Incumbent refutations always stand: the challengers never
        // carry traces, and a concrete counterexample (which replay
        // will independently validate) outranks a proof claim.
        if (result.verdict == Verdict::Refuted) {
            if (decided())
                warn("engine race: a challenger proved '%s' but BMC "
                     "refuted it — keeping the counterexample for "
                     "validation to arbitrate",
                     query_.name.c_str());
            return false;
        }
        int win = winner_.load(std::memory_order_relaxed);
        if (win == kPdr) {
            result.verdict = Verdict::Proven;
            result.source = VerdictSource::Race;
            result.engine = EngineKind::Pdr;
            result.unbounded = pdr_.unbounded;
            result.pdrFrames = pdr_.frames;
            result.pdrObligations = pdr_.obligations;
            result.conflicts = pdr_.conflicts;
            result.propagations = pdr_.propagations;
            return true;
        }
        if (win == kKind) {
            result.verdict = Verdict::Proven;
            result.source = VerdictSource::Race;
            result.engine = EngineKind::KInduction;
            result.unbounded = kind_.inductive;
            result.conflicts = kind_.conflicts;
            result.propagations = kind_.propagations;
            return true;
        }
        // Nobody claimed. If the incumbent proved at the bound and a
        // challenger that ran to completion holds an unbounded proof
        // of the same property, record the stronger generality (the
        // verdict itself is unchanged).
        if (result.verdict == Verdict::Proven &&
            ((pdr_.verdict == Verdict::Proven && pdr_.unbounded) ||
             kind_.inductive))
            result.unbounded = true;
        return false;
    }

  private:
    void
    claim(int who)
    {
        int expected = 0;
        if (winner_.compare_exchange_strong(expected, who)) {
            stop_.store(true, std::memory_order_relaxed);
            if (incumbent_)
                incumbent_->interrupt();
        }
    }

    const nl::Netlist &nl_;
    const std::unordered_map<std::string, nl::CellId> &signals_;
    const Unroller::Options &options_;
    const Query &query_;
    SolveLimits limits_;
    const std::atomic<bool> *engine_cancel_;
    sat::Solver *incumbent_;

    std::atomic<bool> stop_{false};
    std::atomic<int> winner_{0};
    std::thread pdr_thread_;
    std::thread kind_thread_;
    // Written by the challenger threads, read only after finish()'s
    // joins (which provide the happens-before edge).
    PdrResult pdr_;
    InductiveResult kind_;
};

} // namespace

CheckResult
Engine::runFresh(const Query &query)
{
    CheckResult result;
    // Race mode: the proof challengers run alongside the fresh BMC
    // attempts. There is no incumbent solver to interrupt on this path
    // (checkProperty owns its own); a challenger win just short-cuts
    // the retry ladder and upgrades the verdict in merge().
    std::unique_ptr<ProofRace> proof_race;
    unsigned attempt = 0;
    while (true) {
        SolveLimits limits;
        bool total_binding = false;
        if (!attemptLimits(query, attempt, limits, total_binding)) {
            if (attempt == 0)
                result = cancelledResult(query.bound);
            // else: keep the last attempt's honest Unknown.
            break;
        }
        if (!proof_race && query.frameProp &&
            eopts_.engine == EngineChoice::Race) {
            proof_race = std::make_unique<ProofRace>(
                nl_, signals_, options_, query, limits, &cancel_,
                nullptr);
            proof_race->start();
        }
        CheckResult r = checkProperty(nl_, signals_, options_,
                                      query.bound, query.prop, limits);
        if (attempt > 0) {
            r.seconds += result.seconds;
            r.conflicts += result.conflicts;
            r.propagations += result.propagations;
        }
        result = std::move(r);
        result.retries = attempt;
        refineSource(result, total_binding);
        if (proof_race && proof_race->decided())
            break; // a challenger's proof supersedes further retries
        if (!shouldRetry(result, attempt))
            break;
        attempt++;
    }
    if (proof_race) {
        proof_race->finish();
        proof_race->merge(result);
    }
    fillCoiStats(query, result);
    return result;
}

CheckResult
Engine::runProofEngine(const Query &query)
{
    CheckResult result;
    result.bound = query.bound;
    SolveLimits limits;
    bool total_binding = false;
    // Single-engine mode is diagnostic (--engine pdr / --engine kind):
    // one attempt with the configured budgets, no retry ladder — an
    // Unknown here is the answer the user asked this engine for.
    if (!attemptLimits(query, 0, limits, total_binding)) {
        result = cancelledResult(query.bound);
        fillCoiStats(query, result);
        return result;
    }

    bool refuted = false;
    if (eopts_.engine == EngineChoice::Pdr) {
        PdrOptions popts;
        popts.bound = query.bound;
        popts.limits = limits;
        PdrResult pr = checkPdr(nl_, signals_, options_, query.seeds,
                                query.frameProp, popts);
        result.verdict = pr.verdict;
        result.source = pr.source;
        result.engine = EngineKind::Pdr;
        result.unbounded = pr.unbounded;
        result.pdrFrames = pr.frames;
        result.pdrObligations = pr.obligations;
        result.conflicts = pr.conflicts;
        result.propagations = pr.propagations;
        result.cnfVars = pr.cnfVars;
        result.cnfClauses = pr.cnfClauses;
        result.seconds = pr.seconds;
        refuted = pr.verdict == Verdict::Refuted;
    } else {
        InductiveResult ir =
            checkInductive(nl_, signals_, options_, query.bound,
                           query.bound, query.frameProp, limits);
        result.engine = EngineKind::KInduction;
        result.conflicts = ir.conflicts;
        result.propagations = ir.propagations;
        if (ir.verdict == Verdict::Proven) {
            result.verdict = Verdict::Proven;
            result.source = VerdictSource::Solve;
            result.unbounded = ir.inductive;
        } else if (ir.verdict == Verdict::Refuted) {
            refuted = true;
        } else if (ir.baseProven) {
            // Base case closed at the bound but the step did not:
            // exactly BMC's bounded Proven.
            result.verdict = Verdict::Proven;
            result.source = VerdictSource::Solve;
        } else {
            result.verdict = Verdict::Unknown;
            result.source = ir.source;
        }
    }

    if (refuted) {
        // Neither proof engine carries a trace in the engine's format;
        // concretize the refutation through the plain BMC path so
        // --validate replay, --cex-vcd, and quarantine see the same
        // trace shape regardless of which engine found the bug first.
        CheckResult cex = checkProperty(nl_, signals_, options_,
                                        query.bound, query.prop, limits);
        result.conflicts += cex.conflicts;
        result.propagations += cex.propagations;
        result.seconds += cex.seconds;
        if (cex.verdict == Verdict::Refuted) {
            result.verdict = Verdict::Refuted;
            result.source = VerdictSource::Solve;
            result.trace = std::move(cex.trace);
        } else if (cex.verdict == Verdict::Proven) {
            warn("engine disagreement on '%s': %s refuted but BMC "
                 "proved at bound %u — degrading to Unknown",
                 query.name.c_str(), engineKindName(result.engine),
                 query.bound);
            result.verdict = Verdict::Unknown;
            result.source = VerdictSource::ValidationFailed;
        } else {
            // The concretizing solve ran out of budget; an
            // unreplayable refutation must not be trusted.
            result.verdict = Verdict::Unknown;
            result.source = cex.source;
        }
    }

    refineSource(result, total_binding);
    fillCoiStats(query, result);
    return result;
}

void
Engine::fillCoiStats(const Query &query, CheckResult &result) const
{
    if (query.seeds.empty())
        return;
    nl::Coi coi = nl::computeCoi(nl_, query.seeds);
    result.coiCells = coi.numCells();
    result.coiMems = coi.numMems();
}

namespace
{

/**
 * The end of the quarantine road: neither the original evidence nor a
 * fresh re-solve produced a self-consistent definite verdict. Degrade
 * to Unknown per the PR 3 policy (synthesis treats it exactly like a
 * budget Unknown: drop the hypothesis, never trust the verdict) and
 * pack the diagnostic bundle into validationNote.
 */
void
degradeToValidationFailure(CheckResult &result, const std::string &why)
{
    std::string diag = strfmt(
        "validation failure: %s\n"
        "primary verdict: %s (%s), bound %u, retries %u\n"
        "cnf: %zu vars, %zu clauses (+%zu vars / +%zu clauses this "
        "query)\n",
        why.c_str(), verdictName(result.verdict),
        verdictSourceName(result.source), result.bound, result.retries,
        result.cnfVars, result.cnfClauses, result.cnfVarsAdded,
        result.cnfClausesAdded);
    if (!result.trace.steps.empty())
        diag += "quarantined trace:\n" + result.trace.toString();
    result.verdict = Verdict::Unknown;
    result.source = VerdictSource::ValidationFailed;
    result.validated = false;
    result.trace = Trace{};
    result.validationNote = std::move(diag);
}

} // namespace

std::string
Engine::vcdPathFor(const Query &query) const
{
    if (eopts_.cexVcdDir.empty())
        return "";
    std::string name = query.name.empty() ? "query" : query.name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return strfmt("%s/cex_%s_b%u.vcd", eopts_.cexVcdDir.c_str(),
                  name.c_str(), query.bound);
}

CheckResult
Engine::quarantineSolve(const Query &query, bool warm_ok)
{
    SolveLimits limits;
    bool total_binding = false;
    if (!attemptLimits(query, 0, limits, total_binding)) {
        CheckResult r = cancelledResult(query.bound);
        if (eopts_.faultHook)
            eopts_.faultHook(query, r, SolveStage::Quarantine);
        return r;
    }
    CheckResult r =
        checkProperty(nl_, signals_, options_, query.bound, query.prop,
                      limits, warm_ok ? seedFor(query.bound) : nullptr);
    refineSource(r, total_binding);
    if (eopts_.faultHook)
        eopts_.faultHook(query, r, SolveStage::Quarantine);
    return r;
}

void
Engine::validateResult(const Query &query, CheckResult &result,
                       bool recheck_proof)
{
    Timer vtimer;
    switch (result.verdict) {
      case Verdict::Unknown:
        // Already the degraded verdict; nothing to cross-check.
        return;

      case Verdict::Refuted: {
        std::string vcd = vcdPathFor(query);
        ReplayResult rep =
            replayTrace(nl_, signals_, options_, result.bound,
                        query.prop, result.trace, vcd);
        result.replays++;
        result.replaySeconds += rep.seconds;
        if (rep.ok) {
            result.validated = true;
            break;
        }
        // Quarantine: the counterexample does not stand on its own.
        // One fresh, non-incremental re-solve; if it refutes with a
        // trace that *does* replay, that independent evidence is
        // adopted. Anything else degrades to Unknown.
        result.validationMismatches++;
        warn("validate: counterexample for '%s' failed replay; "
             "quarantining and re-solving fresh",
             query.name.c_str());
        CheckResult fresh = quarantineSolve(query, /*warm_ok=*/false);
        if (fresh.verdict == Verdict::Refuted) {
            ReplayResult rep2 =
                replayTrace(nl_, signals_, options_, fresh.bound,
                            query.prop, fresh.trace, vcd);
            result.replays++;
            result.replaySeconds += rep2.seconds;
            if (rep2.ok) {
                result.trace = std::move(fresh.trace);
                result.validated = true;
                result.validationNote = strfmt(
                    "quarantine recovery: primary counterexample "
                    "failed replay but a fresh re-solve produced a "
                    "replayable refutation. primary replay "
                    "diagnostics:\n%s",
                    rep.note.c_str());
                break;
            }
        }
        degradeToValidationFailure(
            result,
            strfmt("counterexample failed replay and quarantine "
                   "re-solve answered %s.\nprimary replay "
                   "diagnostics:\n%s",
                   verdictName(fresh.verdict), rep.note.c_str()));
        break;
      }

      case Verdict::Proven: {
        if (!recheck_proof)
            break;
        // Routine spot-check: what it validates is the search (a
        // fresh solver, no incremental contamination), so the CNF may
        // warm-start from the published seed. A mismatch found here
        // still goes through the fully independent path above.
        CheckResult fresh = quarantineSolve(query, /*warm_ok=*/true);
        result.proofRechecks++;
        result.recheckSeconds += fresh.seconds;
        switch (fresh.verdict) {
          case Verdict::Proven:
            result.validated = true;
            break;
          case Verdict::Unknown:
            // The fresh solve hit a budget; neither confirms nor
            // contradicts. Keep the primary Proven verdict.
            result.recheckInconclusive++;
            break;
          case Verdict::Refuted: {
            result.validationMismatches++;
            warn("validate: proof re-check for '%s' found a "
                 "counterexample; replaying it",
                 query.name.c_str());
            std::string vcd = vcdPathFor(query);
            ReplayResult rep =
                replayTrace(nl_, signals_, options_, fresh.bound,
                            query.prop, fresh.trace, vcd);
            result.replays++;
            result.replaySeconds += rep.seconds;
            if (rep.ok) {
                // A concretely replayable counterexample beats the
                // incremental UNSAT: adopt the refutation.
                result.verdict = Verdict::Refuted;
                result.source = fresh.source;
                result.trace = std::move(fresh.trace);
                result.validated = true;
                result.validationNote =
                    "proof re-check refuted the property with a "
                    "replayable counterexample; Proven verdict "
                    "discarded";
            } else {
                degradeToValidationFailure(
                    result,
                    strfmt("proof re-check disagreed (Refuted) but "
                           "its counterexample failed replay.\n"
                           "re-check replay diagnostics:\n%s",
                           rep.note.c_str()));
            }
            break;
          }
        }
        break;
      }
    }
    result.validateSeconds += vtimer.seconds();
}

void
Engine::postProcess(size_t index, const Query &query,
                    CheckResult &result)
{
    if (eopts_.faultHook)
        eopts_.faultHook(query, result, SolveStage::Primary);

    if (eopts_.validate != ValidateMode::Off) {
        bool recheck_proof = false;
        switch (eopts_.validate) {
          case ValidateMode::Off:
          case ValidateMode::Replay:
            break;
          case ValidateMode::Sample:
            recheck_proof =
                index % std::max(1u, eopts_.validateSampleN) == 0;
            break;
          case ValidateMode::Full:
            recheck_proof = true;
            break;
        }
        validateResult(query, result, recheck_proof);
    }

    if (result.verdict != Verdict::Unknown) {
        Journal::Record rec;
        rec.name = query.name;
        rec.verdict = result.verdict;
        rec.source = result.source;
        rec.validated = result.validated;
        rec.bound = result.bound;
        rec.retries = result.retries;
        rec.seconds = result.seconds;
        rec.conflicts = result.conflicts;
        rec.propagations = result.propagations;
        // Proof generality: only Proven verdicts can be unbounded, and
        // the bound-independent secondary key is recorded exactly when
        // the proof is (a bounded record must never answer another
        // bound's query).
        rec.unbounded =
            result.unbounded && result.verdict == Verdict::Proven;
        if (eopts_.journal && eopts_.journal->isOpen()) {
            rec.key = journalKey(query.name, result.bound,
                                 query.contentHash);
            rec.baseKey = rec.unbounded
                              ? journalBaseKey(query.name,
                                               query.baseHash)
                              : 0;
            result.journaled = eopts_.journal->append(rec);
        }
        // Cache keys are the raw content hash; unhashed queries
        // (contentHash 0) are never cached — their identity is not
        // content-derived, so a cache record would be unsound to
        // replay in another run.
        if (eopts_.cache && eopts_.cache->isOpen() &&
            query.contentHash != 0) {
            rec.key = query.contentHash;
            rec.baseKey = rec.unbounded ? query.baseHash : 0;
            result.cached = eopts_.cache->append(rec);
        }
    }
}

void
Engine::resolveFromJournal(const std::vector<Query> &batch,
                           std::vector<CheckResult> &results,
                           std::vector<char> &done)
{
    Journal *journal = eopts_.journal;
    if (!journal || journal->numLoaded() == 0)
        return;
    for (size_t i = 0; i < batch.size(); i++) {
        const Journal::Record *rec = journal->lookup(journalKey(
            batch[i].name, batch[i].bound, batch[i].contentHash));
        if (!rec && batch[i].baseHash != 0) {
            // Exact (name, bound, content) miss: an unbounded Proven
            // proof of the same cone + property — journaled at any
            // bound — still answers this query.
            rec = journal->lookupUnbounded(
                journalBaseKey(batch[i].name, batch[i].baseHash));
        }
        if (!rec)
            continue;
        CheckResult r;
        r.verdict = rec->verdict;
        r.source = rec->source;
        r.bound = rec->unbounded ? batch[i].bound : rec->bound;
        r.retries = rec->retries;
        r.seconds = rec->seconds;
        r.conflicts = rec->conflicts;
        r.propagations = rec->propagations;
        r.validated = rec->validated;
        r.unbounded = rec->unbounded;
        r.fromJournal = true;
        if (r.verdict == Verdict::Refuted)
            r.validationNote = "verdict resumed from journal; the "
                               "counterexample trace is not stored";
        fillCoiStats(batch[i], r);
        results[i] = std::move(r);
        done[i] = 1;
    }
}

void
Engine::resolveFromCache(const std::vector<Query> &batch,
                         std::vector<CheckResult> &results,
                         std::vector<char> &done)
{
    VerdictCache *cache = eopts_.cache;
    if (!cache || !cache->isOpen())
        return;
    for (size_t i = 0; i < batch.size(); i++) {
        if (done[i] || batch[i].contentHash == 0)
            continue;
        const Journal::Record *rec =
            cache->lookup(batch[i].contentHash);
        if (!rec && batch[i].baseHash != 0) {
            // Bound-semantics fallback: an unbounded Proven record for
            // the same cone + property satisfies *any* bound, so a
            // different requested bound is a hit, not a miss.
            rec = cache->lookupUnbounded(batch[i].baseHash);
        }
        if (!rec) {
            stats_.cacheMisses++;
            if (cache->hasStaleEntry(batch[i].name, batch[i].bound,
                                     batch[i].contentHash))
                stats_.cacheInvalidations++;
            continue;
        }
        CheckResult r;
        r.verdict = rec->verdict;
        r.source = rec->source;
        r.bound = rec->unbounded ? batch[i].bound : rec->bound;
        r.retries = rec->retries;
        r.seconds = rec->seconds;
        r.conflicts = rec->conflicts;
        r.propagations = rec->propagations;
        r.validated = rec->validated;
        r.unbounded = rec->unbounded;
        r.fromCache = true;
        if (r.verdict == Verdict::Refuted)
            r.validationNote = "verdict replayed from verdict cache; "
                               "the counterexample trace is not stored";
        fillCoiStats(batch[i], r);
        results[i] = std::move(r);
        done[i] = 1;
    }
}

sat::SolverConfig
Engine::challengerConfig(unsigned racer) const
{
    // Diversification table: each challenger searches the same formula
    // with a different restart policy, phase heuristic, and seed, so
    // the portfolio covers instance classes the base config is slow
    // on (cf. the Glucose-vs-Luby split measured on combinatorial
    // cores). Deterministic in the racer index.
    sat::SolverConfig cfg = base_config_;
    cfg.seed = 0x9E3779B97F4A7C15ull * racer;
    switch (racer % 4) {
      case 1:
        cfg.restart = sat::SolverConfig::Restart::Glucose;
        cfg.lbdReduce = true;
        cfg.polarity = sat::SolverConfig::Polarity::False;
        break;
      case 2:
        cfg.restart = sat::SolverConfig::Restart::Luby;
        cfg.lubyUnit = 300;
        cfg.polarity = sat::SolverConfig::Polarity::Rand;
        cfg.randomFreq = 0.02;
        break;
      case 3:
        cfg.restart = sat::SolverConfig::Restart::Glucose;
        cfg.glucoseMargin = 1.15;
        cfg.lbdReduce = true;
        cfg.polarity = sat::SolverConfig::Polarity::True;
        break;
      case 0: // racer >= 4 wraps: randomized Luby
        cfg.restart = sat::SolverConfig::Restart::Luby;
        cfg.polarity = sat::SolverConfig::Polarity::Rand;
        cfg.randomFreq = 0.05;
        break;
    }
    return cfg;
}

sat::Result
Engine::racePortfolio(PropCtx &ctx, const SolveLimits &limits,
                      CheckResult &result)
{
    sat::Solver &incumbent = ctx.solver();
    unsigned racers = std::max(2u, eopts_.portfolioRacers);
    Lit act = ctx.activation();

    // One snapshot per race: level-0 units plus every live clause, in
    // the incumbent's variable numbering. The snapshot includes the
    // current query's activation-guarded clauses and the retired
    // activation units of earlier queries, so every racer decides
    // exactly the incumbent's formula under the same assumption — and
    // therefore any racer's learnt clauses are implicates of the
    // shared database, sound to import in either direction unguarded.
    std::vector<std::vector<Lit>> snapshot;
    incumbent.exportCnf(snapshot);

    sat::ClausePool pool(racers);
    if (eopts_.shareClauses)
        incumbent.setShare(&pool, 0);

    uint64_t inc_exported = incumbent.stats().sharedExported;
    uint64_t inc_imported = incumbent.stats().sharedImported;

    std::vector<std::unique_ptr<sat::Solver>> challengers;
    for (unsigned r = 1; r < racers; r++) {
        auto ch = std::make_unique<sat::Solver>();
        ch->setConfig(challengerConfig(r));
        while (ch->numVars() < incumbent.numVars())
            ch->newVar();
        for (const auto &clause : snapshot)
            ch->addClause(clause);
        if (eopts_.inprocess) {
            // BVE + subsumption on the snapshot; the activation
            // variable must survive to be assumed. Model
            // reconstruction restores eliminated variables before a
            // SAT model is adopted below.
            ch->preprocess(sat::SimplifyOptions{},
                           {sat::var(act)});
        }
        if (eopts_.shareClauses)
            ch->setShare(&pool, r);
        challengers.push_back(std::move(ch));
    }

    std::atomic<int> winner{-1};
    std::vector<sat::Result> verdicts(racers, sat::Result::Unknown);
    std::vector<std::thread> threads;
    threads.reserve(racers - 1);
    // Challengers keep their diversified configs: share the budgets
    // and deadline but not limits.config (the base config).
    SolveLimits ch_limits = limits;
    ch_limits.config = nullptr;
    for (unsigned r = 1; r < racers; r++) {
        sat::Solver *ch = challengers[r - 1].get();
        threads.emplace_back([ch, r, act, ch_limits, &winner,
                              &verdicts, &incumbent, &challengers] {
            applyLimits(*ch, ch_limits);
            sat::Result res = ch->solve({act});
            verdicts[r] = res;
            if (res != sat::Result::Unknown) {
                int expected = -1;
                if (winner.compare_exchange_strong(
                        expected, static_cast<int>(r))) {
                    incumbent.interrupt();
                    for (auto &other : challengers)
                        if (other.get() != ch)
                            other->interrupt();
                }
            }
        });
    }

    applyLimits(incumbent, limits);
    sat::Result inc_res = incumbent.solve({act});
    verdicts[0] = inc_res;
    if (inc_res != sat::Result::Unknown) {
        int expected = -1;
        winner.compare_exchange_strong(expected, 0);
    }
    // The race is decided (or the incumbent exhausted its limits):
    // stop every challenger and wait them out before touching shared
    // state. clearInterrupt() must come after the joins — a late
    // winner still pokes the incumbent's flag.
    for (auto &ch : challengers)
        ch->interrupt();
    for (auto &t : threads)
        t.join();
    incumbent.clearInterrupt();
    incumbent.setShare(nullptr, 0);

    int win = winner.load(std::memory_order_relaxed);
    sat::Result final_res = inc_res;
    if (win > 0) {
        final_res = verdicts[win];
        if (final_res == sat::Result::Sat) {
            // extractTrace() reads the incumbent's model; hand it the
            // challenger's (reconstruction already re-entered any
            // BVE-eliminated variables in Solver::solve()).
            incumbent.adoptModel(
                challengers[win - 1]->model());
        }
    }

    result.portfolioRacers = racers;
    result.portfolioWinner = win;
    if (win > 0) {
        // The winning challenger's solve produced the verdict; record
        // *its* work, not the interrupted incumbent's partial counters
        // (challengers are fresh per race, so totals are per-race).
        result.conflicts = challengers[win - 1]->stats().conflicts;
        result.propagations =
            challengers[win - 1]->stats().propagations;
    }
    result.sharedExported +=
        incumbent.stats().sharedExported - inc_exported;
    result.sharedImported +=
        incumbent.stats().sharedImported - inc_imported;
    for (const auto &ch : challengers) {
        result.sharedExported += ch->stats().sharedExported;
        result.sharedImported += ch->stats().sharedImported;
        result.preprocessVarsEliminated +=
            ch->stats().preprocessVarsEliminated;
        result.preprocessClausesRemoved +=
            ch->stats().preprocessClausesRemoved;
    }
    return final_res;
}

void
Engine::maybePublishSeed(Worker &worker, PropCtx &ctx, unsigned bound)
{
    if (worker.seed_builder_for.erase(bound) == 0)
        return;
    // Snapshot outside the lock: ctx belongs to this worker and the
    // slot is ours until we publish (building == true keeps waiters
    // parked on the condvar).
    auto seed = std::make_unique<PropCtx>(nl_, signals_, options_,
                                          bound);
    seed->seedFrom(ctx);
    {
        std::lock_guard<std::mutex> lk(seed_mu_);
        SeedSlot &slot = seeds_[bound];
        slot.seed = std::move(seed);
        slot.building = false;
    }
    seed_cv_.notify_all();
}

const PropCtx *
Engine::seedFor(unsigned bound)
{
    std::lock_guard<std::mutex> lk(seed_mu_);
    auto it = seeds_.find(bound);
    // Published seeds are immutable and live as long as the engine,
    // so handing out the raw pointer is safe.
    return it != seeds_.end() ? it->second.seed.get() : nullptr;
}

void
Engine::abandonSeed(Worker &worker, unsigned bound)
{
    if (worker.seed_builder_for.erase(bound) == 0)
        return;
    {
        std::lock_guard<std::mutex> lk(seed_mu_);
        seeds_[bound].building = false;
    }
    seed_cv_.notify_all();
}

CheckResult
Engine::runIncremental(Worker &worker, const Query &query)
{
    Timer timer;
    CheckResult result;
    result.bound = query.bound;

    SolveLimits limits;
    bool total_binding = false;
    if (!attemptLimits(query, 0, limits, total_binding)) {
        result = cancelledResult(query.bound);
        fillCoiStats(query, result);
        return result;
    }

    PropCtx &ctx = worker.contextFor(*this, query.bound);
    // If contextFor made this worker the seed builder, waiters are
    // parked until the snapshot lands after CNF construction below;
    // on any exit without publishing (property callback threw), hand
    // the builder role back so they can proceed.
    struct SeedGuard
    {
        Engine &engine;
        Worker &worker;
        unsigned bound;
        ~SeedGuard() { engine.abandonSeed(worker, bound); }
    } seed_guard{*this, worker, query.bound};
    sat::Solver &solver = ctx.solver();
    uint64_t conflicts_before = solver.stats().conflicts;
    uint64_t props_before = solver.stats().propagations;
    uint64_t simp_runs_before = solver.stats().simplifyRuns;
    uint64_t simp_removed_before =
        solver.stats().simplifyClausesRemoved;
    size_t vars_before = static_cast<size_t>(solver.numVars());
    size_t clauses_before = static_cast<size_t>(solver.numClauses());

    ctx.beginQuery();
    Lit bad = query.prop(ctx);
    ctx.assume(bad); // guarded assertion of the violation
    // The transition relation this query demanded is now in the CNF:
    // the snapshot point for warm-starting sibling contexts.
    maybePublishSeed(worker, ctx, query.bound);

    bool race = eopts_.portfolio && eopts_.portfolioRacers >= 2;

    // Proof-engine race: PDR and k-induction challengers start once,
    // before the attempt loop, and run across every retry. A winning
    // challenger interrupts this worker's incumbent solver.
    std::unique_ptr<ProofRace> proof_race;
    if (query.frameProp && eopts_.engine == EngineChoice::Race) {
        proof_race = std::make_unique<ProofRace>(
            nl_, signals_, options_, query, limits, &cancel_, &solver);
        proof_race->start();
    }

    // Attempt/retry loop on the shared context: a retry just re-solves
    // with bigger limits — the learnt clauses from the failed attempt
    // carry over, so escalation resumes rather than restarts the work.
    unsigned attempt = 0;
    while (true) {
        sat::Result r;
        if (race) {
            r = racePortfolio(ctx, limits, result);
        } else {
            applyLimits(solver, limits);
            r = solver.solve({ctx.activation()});
        }
        switch (r) {
          case sat::Result::Unsat:
            result.verdict = Verdict::Proven;
            result.source = VerdictSource::Solve;
            break;
          case sat::Result::Unknown:
            result.verdict = Verdict::Unknown;
            result.source = sourceFromStop(solver.stopReason());
            break;
          case sat::Result::Sat:
            result.verdict = Verdict::Refuted;
            result.source = VerdictSource::Solve;
            result.trace = extractTrace(ctx);
            break;
        }
        result.retries = attempt;
        refineSource(result, total_binding);
        if (proof_race && proof_race->decided())
            break; // a challenger's proof supersedes further retries
        if (!shouldRetry(result, attempt))
            break;
        attempt++;
        if (!attemptLimits(query, attempt, limits, total_binding))
            break; // keep the last attempt's honest Unknown
    }

    result.seconds = timer.seconds();
    if (result.portfolioWinner > 0) {
        // A portfolio challenger won: its solve produced the verdict,
        // so the record carries its name and its work — not the
        // interrupted incumbent's partial counters (racePortfolio
        // already wrote the winner's conflicts/propagations).
        if (result.verdict != Verdict::Unknown)
            result.source = VerdictSource::Portfolio;
    } else {
        result.conflicts = solver.stats().conflicts - conflicts_before;
        result.propagations =
            solver.stats().propagations - props_before;
    }
    result.inprocessRuns =
        solver.stats().simplifyRuns - simp_runs_before;
    result.inprocessClausesRemoved =
        solver.stats().simplifyClausesRemoved - simp_removed_before;
    result.cnfVars = static_cast<size_t>(solver.numVars());
    result.cnfClauses = static_cast<size_t>(solver.numClauses());
    result.cnfVarsAdded = result.cnfVars - vars_before;
    result.cnfClausesAdded = result.cnfClauses - clauses_before;
    if (proof_race) {
        proof_race->finish();
        // A challenger's interrupt poke is sticky; this context is
        // long-lived and must not carry it into the next query.
        solver.clearInterrupt();
        proof_race->merge(result);
    }
    fillCoiStats(query, result);
    ctx.endQuery();
    return result;
}

std::vector<CheckResult>
Engine::drain()
{
    std::vector<Query> batch = std::move(batch_);
    batch_.clear();
    std::vector<CheckResult> results(batch.size());
    if (batch.empty())
        return results;
    stats_.queries += batch.size();

    // Resume: queries with a journaled (already-validated) verdict are
    // answered up front, single-threaded, and never dispatched. The
    // journal (this run's own restart log) outranks the cross-run
    // cache; anything it cannot answer falls through to the cache.
    std::vector<char> done(batch.size(), 0);
    resolveFromJournal(batch, results, done);
    resolveFromCache(batch, results, done);

    auto accumulate = [this](const CheckResult &r) {
        stats_.cnfVarsAdded += r.cnfVarsAdded;
        stats_.cnfClausesAdded += r.cnfClausesAdded;
        stats_.retries += r.retries;
        if (r.verdict == Verdict::Unknown)
            stats_.unknowns++;
        stats_.replays += r.replays;
        stats_.proofRechecks += r.proofRechecks;
        stats_.recheckInconclusive += r.recheckInconclusive;
        stats_.validationMismatches += r.validationMismatches;
        if (r.source == VerdictSource::ValidationFailed)
            stats_.validationFailures++;
        if (r.fromJournal)
            stats_.journalHits++;
        if (r.journaled)
            stats_.journalAppends++;
        if (r.fromCache)
            stats_.cacheHits++;
        if (r.cached)
            stats_.cacheAppends++;
        stats_.replaySeconds += r.replaySeconds;
        stats_.recheckSeconds += r.recheckSeconds;
        stats_.validateSeconds += r.validateSeconds;
        if (r.portfolioRacers > 0)
            stats_.portfolioRaces++;
        if (r.portfolioWinner > 0)
            stats_.portfolioChallengerWins++;
        if (r.engineRaced)
            stats_.engineRaces++;
        // Per-engine win attribution: only verdicts *solved* this run
        // count (journal/cache replays already counted when produced).
        if (r.verdict != Verdict::Unknown && !r.fromJournal &&
            !r.fromCache) {
            switch (r.engine) {
              case EngineKind::Bmc:
                stats_.bmcWins++;
                break;
              case EngineKind::KInduction:
                stats_.kindWins++;
                break;
              case EngineKind::Pdr:
                stats_.pdrWins++;
                break;
            }
        }
        if (r.unbounded)
            stats_.unboundedProofs++;
        stats_.pdrFrames += r.pdrFrames;
        stats_.pdrObligations += r.pdrObligations;
        stats_.sharedExported += r.sharedExported;
        stats_.sharedImported += r.sharedImported;
        stats_.preprocessVarsEliminated += r.preprocessVarsEliminated;
        stats_.preprocessClausesRemoved += r.preprocessClausesRemoved;
        stats_.inprocessRuns += r.inprocessRuns;
        stats_.inprocessClausesRemoved += r.inprocessClausesRemoved;
    };

    // Single-engine diagnostic modes (--engine pdr / --engine kind)
    // replace BMC entirely for queries that provide the frame-local
    // property form; queries without it always fall back to BMC.
    auto proofOnly = [this](const Query &q) {
        return q.frameProp &&
               (eopts_.engine == EngineChoice::Pdr ||
                eopts_.engine == EngineChoice::KInduction);
    };

    if (jobs_ == 1) {
        // Reference path: fresh solver + unroller per query, exactly
        // the classic checkProperty() behavior.
        for (size_t i = 0; i < batch.size(); i++) {
            if (done[i])
                continue;
            results[i] = proofOnly(batch[i])
                             ? runProofEngine(batch[i])
                             : runFresh(batch[i]);
            postProcess(i, batch[i], results[i]);
            stats_.contexts++;
        }
        for (const CheckResult &r : results)
            accumulate(r);
        return results;
    }

    // The netlist's lazy topological order is computed by the first
    // caller and cached in a mutable member; force it here, once, on
    // this thread, so the workers only ever read it.
    nl_.validate();

    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(jobs_);
        workers_.clear();
        for (unsigned w = 0; w < jobs_; w++)
            workers_.push_back(std::make_unique<Worker>());
    }

    std::vector<std::exception_ptr> errors(batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
        if (done[i])
            continue;
        pool_->submit([this, &batch, &results, &errors, i,
                       &proofOnly](unsigned w) {
            try {
                results[i] = proofOnly(batch[i])
                                 ? runProofEngine(batch[i])
                                 : runIncremental(*workers_[w],
                                                  batch[i]);
                postProcess(i, batch[i], results[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool_->wait();

    stats_.contexts = 0;
    stats_.contextsSeeded = 0;
    for (const auto &w : workers_) {
        stats_.contexts += w->contexts_built;
        stats_.contextsSeeded += w->contexts_seeded;
    }
    stats_.steals = pool_->steals();
    for (const CheckResult &r : results)
        accumulate(r);

    for (size_t i = 0; i < batch.size(); i++)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    return results;
}

} // namespace r2u::bmc
