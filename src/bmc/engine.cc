#include "bmc/engine.hh"

#include <exception>
#include <map>
#include <thread>

#include "common/logging.hh"
#include "common/timer.hh"

namespace r2u::bmc
{

using sat::Lit;

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Per-worker state: one incremental context per unroll bound. Only
 * the owning worker thread touches a Worker after construction, so no
 * locking is needed here.
 */
struct Engine::Worker
{
    std::map<unsigned, std::unique_ptr<PropCtx>> contexts;
    uint64_t contexts_built = 0;

    PropCtx &
    contextFor(const Engine &engine, unsigned bound)
    {
        auto it = contexts.find(bound);
        if (it == contexts.end()) {
            it = contexts
                     .emplace(bound, std::make_unique<PropCtx>(
                                         engine.nl_, engine.signals_,
                                         engine.options_, bound))
                     .first;
            contexts_built++;
        }
        return *it->second;
    }
};

Engine::Engine(const nl::Netlist &netlist,
               const std::unordered_map<std::string, nl::CellId> &signals,
               Unroller::Options options, unsigned bound,
               EngineOptions engine_options)
    : nl_(netlist), signals_(signals), options_(std::move(options)),
      bound_(bound), default_budget_(engine_options.conflictBudget),
      jobs_(resolveJobs(engine_options.jobs))
{
    R2U_ASSERT(bound_ > 0, "engine needs a positive default bound");
}

Engine::~Engine() = default;

size_t
Engine::enqueue(Query query)
{
    R2U_ASSERT(query.prop != nullptr, "query without a property");
    if (query.bound == 0)
        query.bound = bound_;
    if (query.conflictBudget == Query::kInheritBudget)
        query.conflictBudget = default_budget_;
    batch_.push_back(std::move(query));
    return batch_.size() - 1;
}

CheckResult
Engine::runFresh(const Query &query)
{
    CheckResult result =
        checkProperty(nl_, signals_, options_, query.bound, query.prop,
                      query.conflictBudget);
    fillCoiStats(query, result);
    return result;
}

void
Engine::fillCoiStats(const Query &query, CheckResult &result) const
{
    if (query.seeds.empty())
        return;
    nl::Coi coi = nl::computeCoi(nl_, query.seeds);
    result.coiCells = coi.numCells();
    result.coiMems = coi.numMems();
}

CheckResult
Engine::runIncremental(Worker &worker, const Query &query)
{
    Timer timer;
    CheckResult result;
    result.bound = query.bound;

    PropCtx &ctx = worker.contextFor(*this, query.bound);
    sat::Solver &solver = ctx.solver();
    uint64_t conflicts_before = solver.stats().conflicts;
    size_t vars_before = static_cast<size_t>(solver.numVars());
    size_t clauses_before = static_cast<size_t>(solver.numClauses());

    ctx.beginQuery();
    Lit bad = query.prop(ctx);
    ctx.assume(bad); // guarded assertion of the violation
    solver.setConflictBudget(query.conflictBudget);
    sat::Result r = solver.solve({ctx.activation()});

    result.seconds = timer.seconds();
    result.conflicts = solver.stats().conflicts - conflicts_before;
    result.cnfVars = static_cast<size_t>(solver.numVars());
    result.cnfClauses = static_cast<size_t>(solver.numClauses());
    result.cnfVarsAdded = result.cnfVars - vars_before;
    result.cnfClausesAdded = result.cnfClauses - clauses_before;
    fillCoiStats(query, result);
    switch (r) {
      case sat::Result::Unsat:
        result.verdict = Verdict::Proven;
        break;
      case sat::Result::Unknown:
        result.verdict = Verdict::Unknown;
        break;
      case sat::Result::Sat:
        result.verdict = Verdict::Refuted;
        result.trace = extractTrace(ctx);
        break;
    }
    ctx.endQuery();
    return result;
}

std::vector<CheckResult>
Engine::drain()
{
    std::vector<Query> batch = std::move(batch_);
    batch_.clear();
    std::vector<CheckResult> results(batch.size());
    if (batch.empty())
        return results;
    stats_.queries += batch.size();

    if (jobs_ == 1) {
        // Reference path: fresh solver + unroller per query, exactly
        // the classic checkProperty() behavior.
        for (size_t i = 0; i < batch.size(); i++)
            results[i] = runFresh(batch[i]);
        stats_.contexts += batch.size();
        for (const CheckResult &r : results) {
            stats_.cnfVarsAdded += r.cnfVarsAdded;
            stats_.cnfClausesAdded += r.cnfClausesAdded;
        }
        return results;
    }

    // The netlist's lazy topological order is computed by the first
    // caller and cached in a mutable member; force it here, once, on
    // this thread, so the workers only ever read it.
    nl_.validate();

    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(jobs_);
        workers_.clear();
        for (unsigned w = 0; w < jobs_; w++)
            workers_.push_back(std::make_unique<Worker>());
    }

    std::vector<std::exception_ptr> errors(batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
        pool_->submit([this, &batch, &results, &errors, i](unsigned w) {
            try {
                results[i] = runIncremental(*workers_[w], batch[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool_->wait();

    stats_.contexts = 0;
    for (const auto &w : workers_)
        stats_.contexts += w->contexts_built;
    stats_.steals = pool_->steals();
    for (const CheckResult &r : results) {
        stats_.cnfVarsAdded += r.cnfVarsAdded;
        stats_.cnfClausesAdded += r.cnfClausesAdded;
    }

    for (size_t i = 0; i < batch.size(); i++)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    return results;
}

} // namespace r2u::bmc
