/**
 * @file
 * Operational Sequential Consistency reference model.
 *
 * Enumerates every SC execution of a litmus test (all interleavings of
 * the threads' accesses against a single atomic memory) and collects
 * the set of reachable outcomes. Used to classify each litmus outcome
 * as SC-allowed or SC-forbidden, giving the ground truth the check
 * engine's verdicts are validated against (the multi-V-scale's MCM is
 * SC, paper §5.1).
 */

#ifndef R2U_MCM_SC_REF_HH
#define R2U_MCM_SC_REF_HH

#include <map>
#include <set>
#include <string>

#include "litmus/litmus.hh"

namespace r2u::mcm
{

/** A final architectural outcome of a litmus test. */
struct Outcome
{
    /** (thread, reg) -> value loaded. */
    std::map<std::pair<int, int>, int> regs;
    /** Final memory value per location. */
    std::map<std::string, int> mem;

    bool operator<(const Outcome &o) const;
    bool operator==(const Outcome &o) const;

    bool satisfies(const litmus::Condition &cond) const;

    std::string toString() const;
};

/** All outcomes reachable under SC. */
std::set<Outcome> enumerateSC(const litmus::Test &test);

/** Does SC permit some outcome satisfying @p cond? */
bool scAllows(const litmus::Test &test, const litmus::Condition &cond);

} // namespace r2u::mcm

#endif // R2U_MCM_SC_REF_HH
