#include "mcm/sc_ref.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::mcm
{

bool
Outcome::operator<(const Outcome &o) const
{
    if (regs != o.regs)
        return regs < o.regs;
    return mem < o.mem;
}

bool
Outcome::operator==(const Outcome &o) const
{
    return regs == o.regs && mem == o.mem;
}

bool
Outcome::satisfies(const litmus::Condition &cond) const
{
    for (const auto &rc : cond.regs) {
        auto it = regs.find({rc.thread, rc.reg});
        if (it == regs.end() || it->second != rc.value)
            return false;
    }
    for (const auto &mc : cond.mem) {
        auto it = mem.find(mc.loc);
        int v = it == mem.end() ? 0 : it->second;
        if (v != mc.value)
            return false;
    }
    return true;
}

std::string
Outcome::toString() const
{
    std::string s;
    for (const auto &[key, v] : regs) {
        if (!s.empty())
            s += " ";
        s += strfmt("%d:x%d=%d", key.first, key.second, v);
    }
    for (const auto &[loc, v] : mem) {
        if (!s.empty())
            s += " ";
        s += strfmt("%s=%d", loc.c_str(), v);
    }
    return s;
}

namespace
{

struct State
{
    std::vector<size_t> pc;             ///< per-thread index
    std::map<std::string, int> mem;     ///< location -> value
    Outcome outcome;                    ///< registers read so far

    bool
    operator<(const State &o) const
    {
        if (pc != o.pc)
            return pc < o.pc;
        if (mem != o.mem)
            return mem < o.mem;
        return outcome < o.outcome;
    }
};

void
explore(const litmus::Test &test, State state, std::set<State> &seen,
        std::set<Outcome> &outcomes)
{
    if (!seen.insert(state).second)
        return;
    bool done = true;
    for (size_t t = 0; t < test.threads.size(); t++) {
        if (state.pc[t] >= test.threads[t].ops.size())
            continue;
        done = false;
        const litmus::Access &a = test.threads[t].ops[state.pc[t]];
        State next = state;
        next.pc[t]++;
        if (a.isWrite) {
            next.mem[a.loc] = a.value;
        } else {
            auto it = next.mem.find(a.loc);
            int v = it == next.mem.end() ? 0 : it->second;
            next.outcome
                .regs[{static_cast<int>(t), a.reg}] = v;
        }
        explore(test, std::move(next), seen, outcomes);
    }
    if (done) {
        Outcome out = state.outcome;
        out.mem = state.mem;
        outcomes.insert(std::move(out));
    }
}

} // namespace

std::set<Outcome>
enumerateSC(const litmus::Test &test)
{
    State init;
    init.pc.assign(test.threads.size(), 0);
    std::set<State> seen;
    std::set<Outcome> outcomes;
    explore(test, std::move(init), seen, outcomes);
    return outcomes;
}

bool
scAllows(const litmus::Test &test, const litmus::Condition &cond)
{
    for (const Outcome &o : enumerateSC(test))
        if (o.satisfies(cond))
            return true;
    return false;
}

} // namespace r2u::mcm
