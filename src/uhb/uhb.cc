#include "uhb/uhb.hh"

#include <algorithm>
#include <set>

#include "common/dot.hh"
#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::uhb
{

using uspec::Axiom;
using uspec::EdgeSpec;
using uspec::Model;
using uspec::Pred;
using uspec::PredKind;

Graph::Graph(size_t num_ops, size_t num_locs)
    : num_ops_(num_ops), num_locs_(num_locs),
      adj_(num_ops * num_locs), labels_(num_ops * num_locs)
{
}

bool
Graph::addEdge(int op_a, int loc_a, int op_b, int loc_b,
               const std::string &label)
{
    int a = nodeOf(op_a, loc_a);
    int b = nodeOf(op_b, loc_b);
    for (int existing : adj_[a])
        if (existing == b)
            return false;
    adj_[a].push_back(b);
    labels_[a].push_back(label);
    edge_count_++;
    return true;
}

bool
Graph::hasEdge(int op_a, int loc_a, int op_b, int loc_b) const
{
    int a = nodeOf(op_a, loc_a);
    int b = nodeOf(op_b, loc_b);
    for (int existing : adj_[a])
        if (existing == b)
            return true;
    return false;
}

bool
Graph::cyclic() const
{
    // Iterative DFS with colors.
    std::vector<uint8_t> color(adj_.size(), 0);
    std::vector<std::pair<int, size_t>> stack;
    for (size_t root = 0; root < adj_.size(); root++) {
        if (color[root])
            continue;
        stack.emplace_back(static_cast<int>(root), 0);
        color[root] = 1;
        while (!stack.empty()) {
            auto &[n, next] = stack.back();
            if (next < adj_[n].size()) {
                int m = adj_[n][next++];
                if (color[m] == 1)
                    return true;
                if (color[m] == 0) {
                    color[m] = 1;
                    stack.emplace_back(m, 0);
                }
            } else {
                color[n] = 2;
                stack.pop_back();
            }
        }
    }
    return false;
}

std::vector<std::pair<int, int>>
Graph::activeNodes() const
{
    std::vector<bool> active(adj_.size(), false);
    for (size_t a = 0; a < adj_.size(); a++) {
        if (!adj_[a].empty())
            active[a] = true;
        for (int b : adj_[a])
            active[b] = true;
    }
    std::vector<std::pair<int, int>> out;
    for (size_t n = 0; n < active.size(); n++) {
        if (active[n]) {
            out.emplace_back(static_cast<int>(n / num_locs_),
                             static_cast<int>(n % num_locs_));
        }
    }
    return out;
}

std::string
Graph::toDot(const Model &model, const std::vector<Microop> &ops,
             const std::string &title) const
{
    DotWriter dot(title);
    dot.addRaw("rankdir=TB;");
    dot.addRaw("splines=true; nodesep=0.6; ranksep=0.45;");
    dot.addRaw("node [shape=circle, width=0.3, fixedsize=true, "
               "fontsize=9];");
    auto id_of = [&](int op, int loc) {
        return strfmt("n_%d_%d", op, loc);
    };
    auto active = activeNodes();

    // Fig. 1b grid: one column per microop (header row of labels),
    // one row per µhb location, rows aligned with rank=same.
    std::set<int> used_locs;
    for (const auto &[op, loc] : active)
        used_locs.insert(loc);
    for (size_t op = 0; op < ops.size(); op++) {
        dot.addNode(strfmt("hdr_%zu", op), ops[op].label,
                    "shape=plaintext, fixedsize=false");
    }
    {
        std::string rank = "{ rank=same;";
        for (size_t op = 0; op < ops.size(); op++)
            rank += strfmt(" \"hdr_%zu\";", op);
        rank += " }";
        dot.addRaw(rank);
    }
    for (int loc : used_locs) {
        dot.addNode(strfmt("row_%d", loc), model.stageNames[loc],
                    "shape=plaintext, fixedsize=false");
        std::string rank = strfmt("{ rank=same; \"row_%d\";", loc);
        for (const auto &[op, l] : active)
            if (l == loc)
                rank += strfmt(" \"%s\";", id_of(op, l).c_str());
        rank += " }";
        dot.addRaw(rank);
    }
    // Invisible edges to order header -> first row and keep columns.
    for (const auto &[op, loc] : active) {
        dot.addNode(id_of(op, loc), "", "");
        dot.addEdge(strfmt("hdr_%d", op), id_of(op, loc), "",
                    "style=invis");
    }
    for (size_t a = 0; a < adj_.size(); a++) {
        for (size_t k = 0; k < adj_[a].size(); k++) {
            int b = adj_[a][k];
            dot.addEdge(
                id_of(static_cast<int>(a / num_locs_),
                      static_cast<int>(a % num_locs_)),
                id_of(b / static_cast<int>(num_locs_),
                      b % static_cast<int>(num_locs_)),
                labels_[a][k]);
        }
    }
    return dot.render();
}

namespace
{

int
boundOp(const AxiomInstance &inst, const std::string &var)
{
    for (size_t i = 0; i < inst.axiom->microops.size(); i++)
        if (inst.axiom->microops[i] == var)
            return inst.binding[i];
    fatal("axiom '%s' references unbound microop '%s'",
          inst.axiom->name.c_str(), var.c_str());
}

/** Does evaluating @p kind require the execution's rf assignment? */
bool
predNeedsRf(PredKind kind)
{
    return kind == PredKind::SameData ||
           kind == PredKind::NoWritesInBetween;
}

/**
 * Evaluate a predicate that only reads static microop fields (valid
 * for every execution sharing @p ops).
 */
bool
evalStaticPred(const Pred &p, const AxiomInstance &inst,
               const std::vector<Microop> &ops)
{
    auto op = [&](const std::string &v) -> const Microop & {
        return ops[boundOp(inst, v)];
    };
    switch (p.kind) {
      case PredKind::True_:
        return true;
      case PredKind::IsAnyRead:
        return op(p.i0).isRead;
      case PredKind::IsAnyWrite:
        return op(p.i0).isWrite;
      case PredKind::ProgramOrder:
        return op(p.i0).core == op(p.i1).core &&
               op(p.i0).index < op(p.i1).index;
      case PredKind::SameCore:
        return op(p.i0).core == op(p.i1).core;
      case PredKind::NotSameCore:
        return op(p.i0).core != op(p.i1).core;
      case PredKind::NotSame:
        return op(p.i0).id != op(p.i1).id;
      case PredKind::SamePA:
        return (op(p.i0).isRead || op(p.i0).isWrite) &&
               (op(p.i1).isRead || op(p.i1).isWrite) &&
               op(p.i0).addr == op(p.i1).addr;
      case PredKind::SameData:
      case PredKind::NoWritesInBetween:
        panic("rf-dependent predicate evaluated as static");
      case PredKind::EdgeExists:
        panic("EdgeExists evaluated as plain predicate");
    }
    return false;
}

/** Evaluate an rf-dependent predicate against a concrete execution. */
bool
evalRfPred(const Pred &p, const AxiomInstance &inst,
           const Execution &exec)
{
    auto op = [&](const std::string &v) -> const Microop & {
        return exec.ops[boundOp(inst, v)];
    };
    switch (p.kind) {
      case PredKind::SameData:
        return op(p.i1).isRead &&
               exec.rf[op(p.i1).id] == op(p.i0).id;
      case PredKind::NoWritesInBetween:
        // With an explicit rf, "i0's write reaches i1 with no
        // intervening same-address write" is exactly rf(i1) == i0.
        return op(p.i1).isRead &&
               exec.rf[op(p.i1).id] == op(p.i0).id;
      default:
        panic("static predicate evaluated as rf-dependent");
    }
    return false;
}

/** Add orientation edges implied by the execution's rf/ws/fr. */
void
addMemorySemantics(const Model &model, const Execution &exec, Graph &g)
{
    int acc = model.memAccessStage.empty()
                  ? -1
                  : model.locOf(model.memAccessStage);
    int mem =
        model.memStage.empty() ? -1 : model.locOf(model.memStage);
    if (acc < 0)
        return;

    // ws: coherence order at the access point and the memory array.
    for (const auto &[addr, writes] : exec.ws) {
        for (size_t i = 0; i + 1 < writes.size(); i++) {
            g.addEdge(writes[i], acc, writes[i + 1], acc, "ws");
            if (mem >= 0)
                g.addEdge(writes[i], mem, writes[i + 1], mem, "ws");
        }
    }
    for (const Microop &r : exec.ops) {
        if (!r.isRead)
            continue;
        int w = exec.rf[r.id];
        // rf: the source write's access precedes the read's access.
        if (w >= 0)
            g.addEdge(w, acc, r.id, acc, "rf");
        // fr: the read's access precedes every coherence successor of
        // its source (every same-address write, when reading init).
        auto it = exec.ws.find(r.addr);
        if (it == exec.ws.end())
            continue;
        bool after_src = (w < 0);
        for (int w2 : it->second) {
            if (after_src && w2 != w)
                g.addEdge(r.id, acc, w2, acc, "fr");
            if (w2 == w)
                after_src = true;
        }
    }
}

struct Solver
{
    int branches = 0;

    /** Instances with EdgeExists antecedents (conditional). */
    std::vector<const AxiomInstance *> conditional;
    /** Unordered (EitherOrdering) instances to branch over. */
    std::vector<const AxiomInstance *> eithers;

    bool
    edgesHold(const AxiomInstance &inst, const Graph &g) const
    {
        for (const Pred &p : inst.axiom->antecedents) {
            if (p.kind != PredKind::EdgeExists)
                continue;
            if (!g.hasEdge(boundOp(inst, p.edge.src.microop),
                           p.edge.src.loc,
                           boundOp(inst, p.edge.dst.microop),
                           p.edge.dst.loc))
                return false;
        }
        return true;
    }

    static void
    applyEdges(const AxiomInstance &inst,
               const std::vector<EdgeSpec> &edges, Graph &g)
    {
        for (const EdgeSpec &e : edges) {
            g.addEdge(boundOp(inst, e.src.microop), e.src.loc,
                      boundOp(inst, e.dst.microop), e.dst.loc,
                      e.label.empty() ? inst.axiom->name : e.label);
        }
    }

    /** Fixpoint over conditional single-alternative instances. */
    void
    fixpoint(Graph &g) const
    {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const AxiomInstance *inst : conditional) {
                if (!edgesHold(*inst, g))
                    continue;
                size_t before = g.numEdges();
                applyEdges(*inst, inst->axiom->edgeAlternatives[0], g);
                changed |= g.numEdges() != before;
            }
        }
    }

    /** DFS over EitherOrdering choices; true iff an acyclic
     *  completion exists. */
    bool
    branch(Graph g, size_t next_either, Graph &out)
    {
        branches++;
        fixpoint(g);
        if (g.cyclic()) {
            out = g;
            return false;
        }
        if (next_either >= eithers.size()) {
            out = g;
            return true;
        }
        const AxiomInstance &inst = *eithers[next_either];
        if (!edgesHold(inst, g))
            return branch(std::move(g), next_either + 1, out);
        Graph cyc = g;
        for (const auto &alt : inst.axiom->edgeAlternatives) {
            Graph trial = g;
            applyEdges(inst, alt, trial);
            Graph sub(0, 0);
            if (branch(std::move(trial), next_either + 1, sub)) {
                out = sub;
                return true;
            }
            cyc = sub;
        }
        out = cyc;
        return false;
    }
};

} // namespace

InstanceTable::InstanceTable(const Model &model,
                             const std::vector<Microop> &ops)
{
    size_t num_ops = ops.size();
    for (const Axiom &ax : model.axioms) {
        size_t arity = ax.microops.size();
        // A quantifier over microops has no bindings on an empty
        // execution (the pre-table enumerator evaluated one bogus
        // all-zero binding here, indexing ops[0] out of bounds).
        if (arity > 0 && num_ops == 0)
            continue;
        std::vector<int> binding(arity, 0);
        while (true) {
            AxiomInstance inst;
            inst.axiom = &ax;
            inst.binding = binding;
            bool holds = true;
            for (const Pred &p : ax.antecedents) {
                if (p.kind == PredKind::EdgeExists ||
                    predNeedsRf(p.kind))
                    continue;
                if (!evalStaticPred(p, inst, ops)) {
                    holds = false;
                    break;
                }
            }
            if (holds) {
                for (const Pred &p : ax.antecedents) {
                    if (p.kind == PredKind::EdgeExists)
                        inst.hasEdgeCond = true;
                    else if (predNeedsRf(p.kind))
                        inst.rfPreds.push_back(&p);
                }
                instances_.push_back(std::move(inst));
            }
            // Next binding.
            size_t d = 0;
            while (d < arity) {
                if (++binding[d] < static_cast<int>(num_ops))
                    break;
                binding[d] = 0;
                d++;
            }
            if (d == arity || arity == 0)
                break;
        }
    }
}

SolveResult
solve(const Model &model, const Execution &exec)
{
    InstanceTable table(model, exec.ops);
    return solve(model, exec, table);
}

SolveResult
solve(const Model &model, const Execution &exec,
      const InstanceTable &table)
{
    size_t num_ops = exec.ops.size();
    size_t num_locs = model.stageNames.size();
    Graph base(num_ops, num_locs);
    addMemorySemantics(model, exec, base);

    Solver solver;

    // The static filtering already happened at table build; only the
    // rf-dependent antecedents remain to be checked per execution.
    for (const AxiomInstance &inst : table.instances()) {
        bool holds = true;
        for (const Pred *p : inst.rfPreds) {
            if (!evalRfPred(*p, inst, exec)) {
                holds = false;
                break;
            }
        }
        if (!holds)
            continue;
        if (inst.axiom->isEitherOrdering())
            solver.eithers.push_back(&inst);
        else if (inst.hasEdgeCond)
            solver.conditional.push_back(&inst);
        else
            Solver::applyEdges(inst, inst.axiom->edgeAlternatives[0],
                               base);
    }

    SolveResult result;
    Graph out(0, 0);
    result.observable = solver.branch(std::move(base), 0, out);
    result.graph = std::move(out);
    result.branchesExplored = solver.branches;
    result.edges = result.graph.numEdges();
    return result;
}

} // namespace r2u::uhb
