/**
 * @file
 * µhb graphs and µspec axiom evaluation (paper §2).
 *
 * A candidate Execution fixes each read's source write (rf) and a
 * coherence order per location (ws). solve() instantiates the model's
 * axioms over the microops, adds memory-semantics orientation edges
 * (rf/ws/fr at the model's memory-access row, reflecting the paper's
 * §4.3.6 functional-correctness assumption), runs the EdgeExists
 * fixpoint, branches over unordered (EitherOrdering) structural HBIs,
 * and reports whether an acyclic µhb graph exists: acyclic = the
 * execution is possible on the microarchitecture, cyclic = impossible.
 */

#ifndef R2U_UHB_UHB_HH
#define R2U_UHB_UHB_HH

#include <map>
#include <string>
#include <vector>

#include "uspec/uspec.hh"

namespace r2u::uhb
{

struct Microop
{
    int id = 0;
    int core = 0;
    int index = 0; ///< program-order index within its core
    bool isRead = false;
    bool isWrite = false;
    int addr = 0;
    int value = 0; ///< writes: stored; reads: observed (per execution)
    std::string label;
};

struct Execution
{
    std::vector<Microop> ops;
    /** Per-op rf source: writer op id, -1 for the initial value, -2
     *  when not a read. */
    std::vector<int> rf;
    /** Coherence order: addr -> write op ids, oldest first. */
    std::map<int, std::vector<int>> ws;
};

/** A µhb graph over (microop, location) nodes. */
class Graph
{
  public:
    Graph(size_t num_ops, size_t num_locs);

    int nodeOf(int op, int loc) const
    {
        return op * static_cast<int>(num_locs_) + loc;
    }

    /** Add an edge; returns false if it already existed. */
    bool addEdge(int op_a, int loc_a, int op_b, int loc_b,
                 const std::string &label = "");

    bool hasEdge(int op_a, int loc_a, int op_b, int loc_b) const;

    /** True iff the graph currently has a directed cycle. */
    bool cyclic() const;

    size_t numEdges() const { return edge_count_; }

    /** Nodes that participate in at least one edge. */
    std::vector<std::pair<int, int>> activeNodes() const;

    /**
     * Render in the Fig. 1b style: one column per microop, one row
     * per µhb location.
     */
    std::string toDot(const uspec::Model &model,
                      const std::vector<Microop> &ops,
                      const std::string &title) const;

  private:
    size_t num_ops_, num_locs_;
    std::vector<std::vector<int>> adj_;     ///< per node
    std::vector<std::vector<std::string>> labels_;
    size_t edge_count_ = 0;
};

struct SolveResult
{
    bool observable = false;
    /** Acyclic witness when observable; a cyclic instance otherwise. */
    Graph graph{0, 0};
    int branchesExplored = 0;
    size_t edges = 0;
};

/**
 * One fully-bound axiom instantiation whose execution-independent
 * antecedents already hold over a fixed microop list. The rf-dependent
 * antecedents (SameData / NoWritesInBetween) are kept symbolic and
 * re-evaluated per execution by solve().
 */
struct AxiomInstance
{
    const uspec::Axiom *axiom = nullptr;
    std::vector<int> binding; ///< microop id per quantified variable
    /** Antecedents that read the execution's rf assignment. */
    std::vector<const uspec::Pred *> rfPreds;
    bool hasEdgeCond = false; ///< has EdgeExists antecedents
};

/**
 * Per-(model, microop-list) axiom-binding precomputation. Every
 * candidate execution of a litmus test shares the same microops, so
 * the O(num_ops^arity) binding enumeration — and the filtering by
 * predicates that only read static microop fields (core, index,
 * address, read/write kind) — is hoisted here and done once per test
 * instead of once per execution. The model and the microop list must
 * outlive the table (it stores pointers into the model's axioms).
 */
class InstanceTable
{
  public:
    InstanceTable() = default;
    InstanceTable(const uspec::Model &model,
                  const std::vector<Microop> &ops);

    const std::vector<AxiomInstance> &instances() const
    {
        return instances_;
    }

  private:
    std::vector<AxiomInstance> instances_;
};

/**
 * Decide whether @p exec is possible per @p model. The model's
 * memAccessStage (and memStage, if nonempty) name the µhb rows used
 * for rf/ws/fr orientation of memory events. Builds a fresh
 * InstanceTable per call; when solving many executions of the same
 * test, build the table once and use the overload below.
 */
SolveResult solve(const uspec::Model &model, const Execution &exec);

/**
 * Same, with the axiom-binding enumeration precomputed. @p table must
 * have been built from @p model and @p exec.ops' microop list (same
 * ids, kinds, cores, indices and addresses). Thread-safe for
 * concurrent calls sharing one table.
 */
SolveResult solve(const uspec::Model &model, const Execution &exec,
                  const InstanceTable &table);

} // namespace r2u::uhb

#endif // R2U_UHB_UHB_HH
