#include "uspec/uspec.hh"

#include <cctype>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace r2u::uspec
{

const char *
predKindName(PredKind kind)
{
    switch (kind) {
      case PredKind::True_: return "True";
      case PredKind::IsAnyRead: return "IsAnyRead";
      case PredKind::IsAnyWrite: return "IsAnyWrite";
      case PredKind::ProgramOrder: return "ProgramOrder";
      case PredKind::SameCore: return "SameCore";
      case PredKind::NotSameCore: return "NotSameCore";
      case PredKind::NotSame: return "NotSame";
      case PredKind::SamePA: return "SamePA";
      case PredKind::SameData: return "SameData";
      case PredKind::NoWritesInBetween: return "NoWritesInBetween";
      case PredKind::EdgeExists: return "EdgeExists";
    }
    return "?";
}

int
Model::locOf(const std::string &stage) const
{
    for (size_t i = 0; i < stageNames.size(); i++)
        if (stageNames[i] == stage)
            return static_cast<int>(i);
    return -1;
}

int
Model::addStage(const std::string &stage)
{
    int loc = locOf(stage);
    if (loc >= 0)
        return loc;
    stageNames.push_back(stage);
    return static_cast<int>(stageNames.size()) - 1;
}

namespace
{

std::string
edgeToString(const Model &m, const EdgeSpec &e)
{
    std::string s = "((" + e.src.microop + ", " +
                    m.stageNames[e.src.loc] + "), (" + e.dst.microop +
                    ", " + m.stageNames[e.dst.loc] + ")";
    if (!e.label.empty()) {
        s += ", \"" + e.label + "\"";
        if (!e.color.empty())
            s += ", \"" + e.color + "\"";
    }
    s += ")";
    return s;
}

} // namespace

std::string
Model::print() const
{
    std::string out;
    for (size_t i = 0; i < stageNames.size(); i++)
        out += strfmt("StageName %zu \"%s\".\n", i,
                      stageNames[i].c_str());
    if (!memAccessStage.empty())
        out += "MemoryAccessStage \"" + memAccessStage + "\".\n";
    if (!memStage.empty())
        out += "MemoryStage \"" + memStage + "\".\n";
    for (const std::string &note : notes)
        out += "% " + note + "\n";
    out += "\n";
    for (const Axiom &ax : axioms) {
        out += "Axiom \"" + ax.name + "\":\n";
        if (!ax.note.empty())
            out += "% " + ax.note + "\n";
        out += "forall " +
               std::string(ax.microops.size() == 1 ? "microop"
                                                   : "microops");
        for (size_t i = 0; i < ax.microops.size(); i++)
            out += std::string(i ? ", " : " ") + "\"" + ax.microops[i] +
                   "\"";
        out += ",\n";
        for (const Pred &p : ax.antecedents) {
            if (p.kind == PredKind::EdgeExists) {
                out += "EdgeExists " + edgeToString(*this, p.edge) +
                       " =>\n";
            } else {
                out += std::string(predKindName(p.kind)) + " " + p.i0;
                if (!p.i1.empty())
                    out += " " + p.i1;
                out += " =>\n";
            }
        }
        if (ax.edgeAlternatives.size() == 2) {
            out += "EitherOrdering " +
                   edgeToString(*this, ax.edgeAlternatives[0][0]) + ".\n";
        } else if (ax.edgeAlternatives[0].size() == 1) {
            out += "AddEdge " +
                   edgeToString(*this, ax.edgeAlternatives[0][0]) + ".\n";
        } else {
            out += "AddEdges [";
            const auto &edges = ax.edgeAlternatives[0];
            for (size_t i = 0; i < edges.size(); i++) {
                if (i)
                    out += ";\n          ";
                out += edgeToString(*this, edges[i]);
            }
            out += "].\n";
        }
        out += "\n";
    }
    return out;
}

// ----------------------------------------------------------------------
// Parser.
// ----------------------------------------------------------------------

namespace
{

class DslParser
{
  public:
    explicit DslParser(const std::string &text) : text_(text) {}

    Model
    parse()
    {
        Model m;
        skipWs();
        while (pos_ < text_.size()) {
            std::string kw = ident();
            if (kw == "StageName") {
                size_t idx = number();
                std::string name = quoted();
                expect('.');
                while (m.stageNames.size() <= idx)
                    m.stageNames.push_back("");
                m.stageNames[idx] = name;
            } else if (kw == "MemoryAccessStage") {
                m.memAccessStage = quoted();
                expect('.');
            } else if (kw == "MemoryStage") {
                m.memStage = quoted();
                expect('.');
            } else if (kw == "Axiom") {
                m.axioms.push_back(parseAxiom(m));
            } else if (kw == "%") {
                // comment to end of line
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    pos_++;
            } else {
                fatal("uspec parse: unexpected token '%s'", kw.c_str());
            }
            skipWs();
        }
        return m;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(c))) {
                pos_++;
            } else if (c == '%') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    pos_++;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        skipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("uspec parse: expected '%c' at offset %zu", c, pos_);
        pos_++;
    }

    bool
    accept(char c)
    {
        if (peek() == c) {
            pos_++;
            return true;
        }
        return false;
    }

    std::string
    ident()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '%')) {
            pos_++;
            if (text_[start] == '%')
                break;
        }
        if (pos_ == start)
            fatal("uspec parse: expected identifier at offset %zu", pos_);
        return text_.substr(start, pos_ - start);
    }

    size_t
    number()
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            pos_++;
        if (pos_ == start)
            fatal("uspec parse: expected number at offset %zu", pos_);
        return static_cast<size_t>(
            std::stoul(text_.substr(start, pos_ - start)));
    }

    std::string
    quoted()
    {
        expect('"');
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '"')
            pos_++;
        if (pos_ >= text_.size())
            fatal("uspec parse: unterminated string");
        std::string s = text_.substr(start, pos_ - start);
        pos_++;
        return s;
    }

    EdgeSpec
    parseEdge(Model &m)
    {
        EdgeSpec e;
        expect('(');
        expect('(');
        e.src.microop = ident();
        expect(',');
        e.src.loc = stageRef(m);
        expect(')');
        expect(',');
        expect('(');
        e.dst.microop = ident();
        expect(',');
        e.dst.loc = stageRef(m);
        expect(')');
        if (accept(',')) {
            e.label = quoted();
            if (accept(','))
                e.color = quoted();
        }
        expect(')');
        return e;
    }

    int
    stageRef(Model &m)
    {
        std::string name = ident();
        int loc = m.locOf(name);
        if (loc < 0)
            fatal("uspec parse: unknown stage '%s'", name.c_str());
        return loc;
    }

    Axiom
    parseAxiom(Model &m)
    {
        Axiom ax;
        ax.name = quoted();
        expect(':');
        std::string fa = ident();
        if (fa != "forall")
            fatal("uspec parse: expected 'forall'");
        std::string kind = ident();
        if (kind != "microop" && kind != "microops")
            fatal("uspec parse: expected 'microop(s)'");
        ax.microops.push_back(quoted());
        while (accept(',')) {
            // Could be another quantified var or the start of the body.
            if (peek() == '"') {
                ax.microops.push_back(quoted());
            } else {
                break;
            }
        }

        // Antecedents and consequent.
        while (true) {
            std::string tok = ident();
            if (tok == "AddEdge") {
                ax.edgeAlternatives = {{parseEdge(m)}};
                expect('.');
                return ax;
            }
            if (tok == "AddEdges") {
                expect('[');
                std::vector<EdgeSpec> edges;
                edges.push_back(parseEdge(m));
                while (accept(';'))
                    edges.push_back(parseEdge(m));
                expect(']');
                expect('.');
                ax.edgeAlternatives = {edges};
                return ax;
            }
            if (tok == "EitherOrdering") {
                EdgeSpec e = parseEdge(m);
                EdgeSpec rev = e;
                std::swap(rev.src, rev.dst);
                ax.edgeAlternatives = {{e}, {rev}};
                expect('.');
                return ax;
            }
            // A predicate antecedent.
            Pred p;
            if (tok == "EdgeExists") {
                p.kind = PredKind::EdgeExists;
                p.edge = parseEdge(m);
            } else {
                bool found = false;
                for (PredKind k :
                     {PredKind::IsAnyRead, PredKind::IsAnyWrite,
                      PredKind::ProgramOrder, PredKind::SameCore,
                      PredKind::NotSameCore, PredKind::NotSame,
                      PredKind::SamePA, PredKind::SameData,
                      PredKind::NoWritesInBetween, PredKind::True_}) {
                    if (tok == predKindName(k)) {
                        p.kind = k;
                        found = true;
                        break;
                    }
                }
                if (!found)
                    fatal("uspec parse: unknown predicate '%s'",
                          tok.c_str());
                if (p.kind != PredKind::True_) {
                    p.i0 = ident();
                    bool binary =
                        p.kind != PredKind::IsAnyRead &&
                        p.kind != PredKind::IsAnyWrite;
                    if (binary)
                        p.i1 = ident();
                }
            }
            ax.antecedents.push_back(std::move(p));
            // '=>' separator
            skipWs();
            if (pos_ + 1 < text_.size() && text_[pos_] == '=' &&
                text_[pos_ + 1] == '>') {
                pos_ += 2;
            } else {
                fatal("uspec parse: expected '=>' after predicate");
            }
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Model
Model::parse(const std::string &text)
{
    DslParser p(text);
    Model m = p.parse();
    m.validate();
    return m;
}

void
Model::validate() const
{
    auto check_stage = [&](int loc, const std::string &where) {
        if (loc < 0 || loc >= static_cast<int>(stageNames.size()) ||
            stageNames[static_cast<size_t>(loc)].empty())
            fatal("uspec model: %s references undeclared stage %d",
                  where.c_str(), loc);
    };
    if (!memAccessStage.empty() && locOf(memAccessStage) < 0)
        fatal("uspec model: MemoryAccessStage '%s' is not declared",
              memAccessStage.c_str());
    if (!memStage.empty() && locOf(memStage) < 0)
        fatal("uspec model: MemoryStage '%s' is not declared",
              memStage.c_str());
    for (const Axiom &ax : axioms) {
        auto check_var = [&](const std::string &var) {
            for (const auto &m : ax.microops)
                if (m == var)
                    return;
            fatal("uspec model: axiom '%s' references unbound "
                  "microop '%s'", ax.name.c_str(), var.c_str());
        };
        auto check_edge = [&](const EdgeSpec &e) {
            check_var(e.src.microop);
            check_var(e.dst.microop);
            check_stage(e.src.loc, "axiom " + ax.name);
            check_stage(e.dst.loc, "axiom " + ax.name);
        };
        for (const Pred &p : ax.antecedents) {
            if (p.kind == PredKind::EdgeExists) {
                check_edge(p.edge);
            } else if (p.kind != PredKind::True_) {
                check_var(p.i0);
                if (!p.i1.empty())
                    check_var(p.i1);
            }
        }
        if (ax.edgeAlternatives.empty() ||
            ax.edgeAlternatives.size() > 2)
            fatal("uspec model: axiom '%s' has %zu edge alternatives",
                  ax.name.c_str(), ax.edgeAlternatives.size());
        for (const auto &alt : ax.edgeAlternatives)
            for (const EdgeSpec &e : alt)
                check_edge(e);
    }
}

} // namespace r2u::uspec
