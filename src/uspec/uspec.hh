/**
 * @file
 * µspec models: axiomatic microarchitecture specifications (paper §2,
 * §3). A model declares named µhb-graph row locations (StageName) and
 * a list of axioms. Each axiom universally quantifies over microops,
 * states a conjunction of predicate antecedents, and adds happens-
 * before edges; unordered structural HBIs are expressed as a
 * disjunction of edge sets ("EitherOrdering").
 *
 * The textual DSL mirrors the paper's artifact format (vscale.uarch)
 * and round-trips through print() / parse().
 */

#ifndef R2U_USPEC_USPEC_HH
#define R2U_USPEC_USPEC_HH

#include <string>
#include <vector>

namespace r2u::uspec
{

enum class PredKind {
    True_,            ///< always holds
    IsAnyRead,        ///< i0 is a memory read
    IsAnyWrite,       ///< i0 is a memory write
    ProgramOrder,     ///< i0 before i1 in program order (same core)
    SameCore,         ///< i0 and i1 on the same core
    NotSameCore,      ///< i0 and i1 on different cores
    NotSame,          ///< i0 and i1 are distinct microops
    SamePA,           ///< same physical address
    SameData,         ///< i1 reads the value written by i0 (rf)
    NoWritesInBetween,///< no other same-address write between i0, i1
    EdgeExists        ///< the given µhb edge has been added
};

const char *predKindName(PredKind kind);

/** A (microop variable, location) µhb node reference. */
struct NodeRef
{
    std::string microop;
    int loc = -1;

    bool operator==(const NodeRef &o) const
    {
        return microop == o.microop && loc == o.loc;
    }
};

struct EdgeSpec
{
    NodeRef src, dst;
    std::string label;
    std::string color;
};

struct Pred
{
    PredKind kind = PredKind::True_;
    std::string i0, i1; ///< microop variable operands (i1 may be empty)
    EdgeSpec edge;      ///< EdgeExists operand
};

struct Axiom
{
    std::string name;
    std::vector<std::string> microops; ///< quantified variables
    std::vector<Pred> antecedents;     ///< conjunction
    /**
     * Consequent: a disjunction of edge sets. Size 1 is the common
     * AddEdge/AddEdges case; size 2 encodes EitherOrdering.
     */
    std::vector<std::vector<EdgeSpec>> edgeAlternatives;

    /**
     * Free-form annotation printed as a `%` comment line under the
     * axiom header (e.g. "degraded: ... undetermined"). Comments are
     * skipped by the parser, so notes do not survive a round-trip;
     * an empty note prints nothing (bit-identical output).
     */
    std::string note;

    bool isEitherOrdering() const { return edgeAlternatives.size() > 1; }
};

struct Model
{
    std::vector<std::string> stageNames;
    std::vector<Axiom> axioms;

    /**
     * Name of the µhb row at which memory operations access the
     * shared memory (the synthesized request-interface node). The
     * check engine orients rf/ws/fr there (§4.3.6 functional
     * correctness). Empty when the model has no shared memory.
     */
    std::string memAccessStage;
    /** Name of the shared-memory array row (may be empty). */
    std::string memStage;

    /**
     * Model-level annotations printed as `%` comment lines after the
     * stage declarations (e.g. axioms omitted because their ordering
     * proof came back undetermined). Parser-skipped; empty prints
     * nothing.
     */
    std::vector<std::string> notes;

    /** Location id of a stage name; -1 if absent. */
    int locOf(const std::string &stage) const;

    /** Get-or-create a stage location. */
    int addStage(const std::string &stage);

    std::string print() const;

    /** Parse the DSL text; fatal() on syntax errors. */
    static Model parse(const std::string &text);

    /**
     * Structural well-formedness: every edge references a declared
     * stage and a quantified microop variable; EitherOrdering axioms
     * have exactly two alternatives; memAccessStage/memStage (when
     * set) name declared stages. fatal() on violations.
     */
    void validate() const;
};

} // namespace r2u::uspec

#endif // R2U_USPEC_USPEC_HH
